"""Literal expert-parallel execution over P logical workers.

This module executes the MoE layer the way the distributed system
does (paper Fig. 2): every worker holds its own mini-batch shard and a
subset of experts; dispatch produces per-destination send buffers; an
explicit all-to-all exchanges them; each worker runs its local experts
on what it received; a second all-to-all returns results; combine
merges them.  No simulation shortcuts — real numpy buffers move
between per-rank data structures.

Its purpose is to *prove the substitution*: the single-process
:class:`~repro.moe.layer.MoELayer` used for the convergence study is
numerically identical to this synchronized multi-worker execution
(`tests/moe/test_parallel_equivalence.py`), so training results
obtained single-process are exactly what the 32-GPU system would
produce.

Since the pipelined rewrite the sparse hot path is *chunked* (paper
Section 4): each worker's shard splits into ``num_chunks`` contiguous
token ranges, and every chunk runs the seven-task chain
C1 A1 D1 E C2 A2 D2 of :mod:`repro.core.tasks` with real work —

* C1: build the flat per-destination payloads (rows sorted by expert,
  plus per-expert segment counts) for the chunk's routed tokens;
* A1: the dispatch all-to-all — codec roundtrip plus a memcpy into a
  pooled staging buffer (:class:`~repro.nn.buffer_pool.BufferPool`);
* D1: each destination assembles its received segments into one
  contiguous sorted-by-expert row block;
* E:  grouped expert execution
  (:meth:`~repro.moe.experts.Experts.run_grouped`, or the per-expert
  reference loop under ``expert_impl="loop"``);
* C2: split results back per source, in payload row order;
* A2: the combine all-to-all (codec + pooled memcpy);
* D2: the owner merges the chunk's results into its output rows, in
  the gate's original assignment order.

``pipeline="sync"`` executes the chain chunk-major on the calling
thread; ``pipeline="overlap"`` drives the identical task callables
through :class:`~repro.core.runtime.StreamExecutor` — two real FIFO
streams ordered by a registered scheduling policy (OptSche by
default), so chunk i's GEMMs overlap chunk i+1's codec/memcpy.  Both
modes run the same per-task work on disjoint state, and chunks own
disjoint token ranges, so outputs are bit-identical across modes and
across ``num_chunks`` (the per-token combine accumulation order is
preserved exactly; only a lossy codec, whose quantization granularity
is per payload, makes chunking visible — to codec-sized error).

The dense einsum branch (``dispatch_mode="dense"``) stays the
unchunked phase-synchronous reference semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from ..compression.base import Compressor
from ..core.runtime import (
    StreamExecutor,
    chunk_bounds,
    run_inline,
    validate_pipeline,
)
from ..core.scheduler import Scheduler
from ..core.tasks import Task, TaskKind
from ..nn.buffer_pool import Arena, BufferPool
from ..nn.tensor import (
    inference_mode,
    scratch_empty,
    scratch_zeros,
    use_arena,
)
from .experts import Experts
from .layer import MoELayer
from .placement import ExpertPlacement


@dataclass
class A2ATraffic:
    """Byte accounting of one exchange, per (src, dst) worker pair."""

    matrix: np.ndarray  # (P, P) bytes sent from src to dst

    @property
    def total_bytes(self) -> float:
        """All bytes exchanged, self-deliveries included."""
        return float(self.matrix.sum())

    @property
    def off_diagonal_bytes(self) -> float:
        """Bytes that actually cross worker boundaries."""
        return float(self.matrix.sum() - np.trace(self.matrix))


class ExpertParallelGroup:
    """P logical workers sharing one MoE layer's parameters.

    The group borrows the gate and expert parameters of an existing
    :class:`MoELayer`; which worker "hosts" each expert is an
    :class:`~repro.moe.placement.ExpertPlacement` — by default the
    historical contiguous layout (expert ``e`` lives on worker
    ``e // (E // P)``), but any possibly-unequal assignment works, and
    :meth:`set_placement` / :meth:`admit_worker` change it at runtime
    (elastic re-sharding — see :mod:`repro.faults.recovery`).  The
    forward output can be compared bit-for-bit against the
    single-process layer under every placement.

    ``num_chunks`` is the paper's partition degree r; ``pipeline``
    selects synchronous chunk-major execution (``"sync"``) or the
    two-stream overlap executor (``"overlap"``), whose task order
    comes from the ``scheduler`` policy (any
    :func:`~repro.core.scheduler.register_scheduler` name).

    ``link_bandwidth`` (bytes/second, ``None`` = off) adds a wire-time
    model to the A2A tasks: each chunk's *cross-worker* payload bytes
    occupy the link for ``bytes / bandwidth`` seconds (a GIL-released
    wait, like a NIC DMA that burns no CPU) after the codec + staging
    memcpy.  On the real system the interconnect transfer is exactly
    this — link occupancy concurrent with the SMs — and it is what
    ScheMoE hides behind expert GEMMs; the CPU-side codec/memcpy work
    additionally overlaps wherever cores are free (numpy releases the
    GIL), but on a core-starved host the wire time is the part of the
    A2A that can *always* overlap.  Both pipeline modes run the same
    task closures, so sync pays the same wire time, serially.  The
    model never touches numerics — outputs are bit-identical with it
    on or off.
    """

    def __init__(
        self,
        layer: MoELayer,
        num_workers: int,
        dead_workers=(),
        pipeline: str = "sync",
        num_chunks: int = 1,
        scheduler: Union[str, Scheduler] = "optsche",
        link_bandwidth: Optional[float] = None,
        placement: Optional[ExpertPlacement] = None,
    ):
        num_experts = layer.gate.num_experts
        if placement is None:
            # The historical default: equal contiguous shards (and the
            # historical divisibility requirement that comes with it).
            if num_workers < 1 or num_experts % num_workers != 0:
                raise ValueError(
                    f"num_experts {num_experts} must be divisible by "
                    f"num_workers {num_workers}"
                )
            placement = ExpertPlacement.contiguous(num_experts, num_workers)
        elif num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
        if link_bandwidth is not None and link_bandwidth <= 0:
            raise ValueError(
                f"link_bandwidth must be > 0 bytes/s, got {link_bandwidth}"
            )
        self.link_bandwidth = link_bandwidth
        self.layer = layer
        self.num_workers = num_workers
        self.pipeline = validate_pipeline(pipeline)
        self.num_chunks = int(num_chunks)
        self._executor = StreamExecutor(scheduler)
        self._pool = BufferPool()
        #: Per-task (start, end) seconds of the most recent chunked
        #: forward (both pipeline modes), for overlap introspection.
        self.last_timeline: Optional[dict] = None
        self._in_forward = False
        self._dead_workers: frozenset = frozenset()
        self._placement: ExpertPlacement = placement
        self._validate_placement(placement)
        if dead_workers:
            self.set_dead_workers(dead_workers)

    # -- placement ---------------------------------------------------------
    @property
    def placement(self) -> ExpertPlacement:
        """The current (versioned) expert→worker assignment."""
        return self._placement

    @property
    def experts_per_worker(self) -> int:
        """Experts per worker under an *equal* placement.

        Kept for the common balanced case; raises under an unequal
        placement, where no single number exists — iterate
        ``placement.experts_of(w)`` instead.
        """
        counts = set(self._placement.counts())
        if len(counts) != 1:
            raise AttributeError(
                "experts_per_worker is undefined under the unequal "
                f"placement {self._placement.counts()}; use "
                "group.placement.experts_of(worker)"
            )
        return counts.pop()

    def _validate_placement(self, placement: ExpertPlacement) -> None:
        if placement.num_experts != self.layer.gate.num_experts:
            raise ValueError(
                f"placement covers {placement.num_experts} experts but "
                f"the layer has {self.layer.gate.num_experts}"
            )
        if placement.num_workers != self.num_workers:
            raise ValueError(
                f"placement spans {placement.num_workers} workers but "
                f"the group has {self.num_workers}"
            )

    def _check_not_in_forward(self, what: str) -> None:
        # Satellite guard: the overlap pipeline's StreamExecutor runs
        # task closures on two threads that read routing state
        # (placement, dead workers) without locks — mutating either
        # mid-forward is a data race, so fail loudly instead.
        if self._in_forward:
            raise RuntimeError(
                f"{what} cannot change while a forward pass is in "
                "flight: the pipeline's task threads are reading it; "
                "mutate the group only between forwards"
            )

    def set_placement(self, placement: ExpertPlacement) -> None:
        """Install a new expert→worker assignment (e.g. after recovery).

        The placement must cover the layer's experts and the group's
        worker count.  Callers move/re-instantiate any expert
        parameters themselves (the group borrows the layer's shared
        bank, so single-process there is nothing to copy) — see
        :class:`repro.faults.recovery.RecoveryController` for the full
        detect → adopt → re-instantiate sequence.  Rejected while a
        forward is in flight.
        """
        self._check_not_in_forward("the expert placement")
        self._validate_placement(placement)
        self._placement = placement

    def admit_worker(self) -> ExpertPlacement:
        """Scale up: admit worker ``num_workers`` and rebalance.

        The new worker takes over its fair share of experts with the
        minimal move set (:meth:`ExpertPlacement.with_worker_added`);
        the new placement (version bumped) is installed and returned.
        Callers then pass ``num_workers + 1`` shards to :meth:`forward`.
        """
        self._check_not_in_forward("the worker count")
        new_placement = self._placement.with_worker_added()
        self.num_workers += 1
        self._placement = new_placement
        return new_placement

    # -- graceful degradation ----------------------------------------------
    @property
    def dead_workers(self) -> frozenset:
        """Workers currently treated as failed (empty when healthy)."""
        return self._dead_workers

    @property
    def dead_experts(self) -> frozenset:
        """Experts lost with the dead workers that hosted them."""
        return frozenset(
            e
            for w in self._dead_workers
            for e in self._placement.experts_of(w)
        )

    def set_dead_workers(self, dead_workers) -> None:
        """Declare workers failed mid-run (e.g. a crashed rank).

        A dead worker's expert shards are gone: no dispatch traffic is
        sent to it, it computes nothing, and the tokens that would
        have routed there are handled by the capacity-drop path —
        combined as zeros with gate renormalization over surviving
        experts — exactly like :meth:`MoELayer.set_dead_experts` with
        the worker's expert range.  The dead worker's *data* shard is
        still processed (in the real system the DP replica re-feeds
        it; here the caller keeps passing all P shards).  Declaring
        every worker dead is a total loss and is rejected, as is any
        change while a forward pass is in flight (the overlap
        pipeline's threads read this set).

        Degrading is one option; :class:`repro.faults.recovery.
        RecoveryController` is the other — survivors adopt the lost
        experts and routing returns to the full expert count.
        """
        self._check_not_in_forward("the dead-worker set")
        dead = frozenset(int(w) for w in dead_workers)
        for w in dead:
            if not 0 <= w < self.num_workers:
                raise ValueError(
                    f"dead worker {w} out of range [0, {self.num_workers})"
                )
        if len(dead) == self.num_workers:
            raise ValueError(
                "all workers declared dead; the group cannot degrade "
                "around a total loss"
            )
        self._dead_workers = dead

    # -- helpers -----------------------------------------------------------
    def _occupy_link(self, wire_bytes: int) -> None:
        """Wire-time model: hold the link for the transfer duration.

        A timed wait, not CPU work — exactly the resource an
        interconnect transfer occupies — so the overlap executor can
        hide it behind the computing stream's GEMMs while sync pays it
        inline.  No-op when ``link_bandwidth`` is None or nothing
        crossed a worker boundary.
        """
        if self.link_bandwidth and wire_bytes:
            time.sleep(wire_bytes / self.link_bandwidth)

    def _apply_codec(self, array: np.ndarray) -> np.ndarray:
        codec: Optional[Compressor] = self.layer.compressor
        if codec is None or codec.bits_per_value >= 32:
            return array
        return codec.roundtrip(array)

    def _validate_shards(self, shards: List[np.ndarray]) -> List[np.ndarray]:
        if len(shards) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} shards, got {len(shards)}"
            )
        model_dim = self.layer.model_dim
        out = []
        for w, shard in enumerate(shards):
            tokens = np.asarray(shard, dtype=np.float32)
            if tokens.ndim != 2 or tokens.shape[1] != model_dim:
                raise ValueError(
                    f"shard {w} must be (tokens, {model_dim}), got "
                    f"{tokens.shape}"
                )
            out.append(tokens)
        return out

    def _gate_shards(self, shards: List[np.ndarray]) -> list:
        """Every worker gates its own shard (shared parameters)."""
        from ..nn.tensor import Tensor

        gate = self.layer.gate
        dead_experts = self.dead_experts
        gate_outputs = []
        for tokens in shards:
            out = gate(Tensor(tokens))
            if dead_experts:
                # Tokens routed to a dead worker's experts fall back to
                # the capacity-drop path (combine as zeros, surviving
                # weights renormalized) before any dispatch happens —
                # the same degradation MoELayer.set_dead_experts applies.
                out = out.with_experts_dropped(dead_experts)
            gate_outputs.append(out)
        return gate_outputs

    # -- the distributed forward pass ---------------------------------------
    def forward(self, shards: List[np.ndarray]) -> List[np.ndarray]:
        """One synchronized forward over per-worker token shards.

        ``shards[w]`` is worker w's (tokens_w, model_dim) input.
        Returns the per-worker outputs.  Also records
        ``self.last_dispatch_traffic`` / ``self.last_combine_traffic``.
        """
        shards = self._validate_shards(shards)
        gate_outputs = self._gate_shards(shards)
        sparse = self.layer.dispatch_mode == "sparse" and all(
            out.has_sparse for out in gate_outputs
        )
        self._in_forward = True
        try:
            if sparse:
                return self._forward_chunked(shards, gate_outputs)
            return self._forward_dense_reference(shards, gate_outputs)
        finally:
            self._in_forward = False

    def forward_concatenated(self, shards: List[np.ndarray]) -> np.ndarray:
        """Forward then concatenate outputs in worker order."""
        return np.concatenate(self.forward(shards), axis=0)

    def forward_inference(self, shards: List[np.ndarray]) -> List[np.ndarray]:
        """Forward-only distributed pass on the arena fast path.

        Runs :meth:`forward` under ``inference_mode()`` with an arena
        that *shares* the group's A2A staging :class:`BufferPool`, so
        expert-output rows, per-chunk assembly blocks and the
        per-worker output buffers all recycle through the same free
        lists as the staging copies.  Bit-identical to the plain
        sparse-path :meth:`forward` (with the borrowed layer in
        ``eval()``).

        The returned per-worker output arrays are arena-owned: they
        stay valid until the next ``forward_inference`` call resets
        the arena, after which their storage is recycled — copy
        anything that must live longer.
        """
        if self.layer.dispatch_mode != "sparse":
            raise RuntimeError(
                "forward_inference requires dispatch_mode='sparse'; "
                f"the layer uses {self.layer.dispatch_mode!r}"
            )
        arena = getattr(self, "_inference_arena", None)
        if arena is None:
            arena = self._inference_arena = Arena(pool=self._pool)
        was_training = self.layer.training
        if was_training:
            self.layer.eval()
        arena.reset()
        try:
            with inference_mode(), use_arena(arena):
                return self.forward(shards)
        finally:
            if was_training:
                self.layer.train()

    # -- chunked task-graph execution (the sparse hot path) ------------------
    def _forward_chunked(
        self, shards: List[np.ndarray], gate_outputs: list
    ) -> List[np.ndarray]:
        from ..nn.tensor import Tensor

        experts: Experts = self.layer.experts
        num_experts = self.layer.gate.num_experts
        model_dim = self.layer.model_dim
        workers = range(self.num_workers)
        dead_workers = self._dead_workers
        r = self.num_chunks
        pool = self._pool
        # The placement, frozen for this forward: owner per expert and
        # each worker's hosted experts in ascending global-id order —
        # the local segment order of every expert-major buffer below.
        owner_of = self._placement.owner_array
        hosted = [
            np.asarray(self._placement.experts_of(w), dtype=np.int64)
            for w in workers
        ]

        # Per-worker routing metadata, gated once over the full shard
        # (chunking never re-gates: capacity, drops and weights are
        # those of the whole shard, so results match num_chunks=1).
        token_ids: List[np.ndarray] = []
        expert_ids: List[np.ndarray] = []
        weights: List[np.ndarray] = []
        members: List[List[np.ndarray]] = []  # [w][c] kept positions
        plans = []  # [w] the gate's cached RoutingPlan
        grouped_members: List[List[np.ndarray]] = []  # [w][c] grouped rows
        for w in workers:
            plan = gate_outputs[w].plan
            plans.append(plan)
            token_ids.append(plan.kept_token_ids)
            expert_ids.append(plan.kept_expert_ids)
            weights.append(
                gate_outputs[w].gate_weights.data[plan.kept_weight_index]
            )
            bounds = chunk_bounds(shards[w].shape[0], r)
            chunk_of = np.searchsorted(
                bounds, plan.kept_token_ids, side="right"
            ) - 1
            members.append(
                [np.nonzero(chunk_of == c)[0] for c in range(r)]
            )
            # The same restriction over the plan's expert-major order:
            # C1 slices these instead of re-sorting per chunk.
            g_chunk = np.searchsorted(
                bounds, plan.grouped_token_ids, side="right"
            ) - 1
            grouped_members.append(
                [np.nonzero(g_chunk == c)[0] for c in range(r)]
            )

        # Under forward_inference these draw from the shared arena —
        # the steady-state loop reuses the same output/assembly
        # buffers every step; in training they are plain allocations.
        outputs = [
            scratch_zeros((shards[w].shape[0], model_dim))
            for w in workers
        ]
        dispatch_traffic = np.zeros((self.num_workers, self.num_workers))
        combine_traffic = np.zeros((self.num_workers, self.num_workers))

        # Mutable per-chunk state handed from task to task.  Keys are
        # chunk-scoped, every entry is written by exactly one task and
        # consumed (popped) by its chain successor, so the two streams
        # never race on it.
        pending_dispatch: Dict[int, list] = {}
        inbox: Dict[tuple, list] = {}
        assembled: Dict[tuple, tuple] = {}
        expert_out: Dict[tuple, tuple] = {}
        pending_return: Dict[int, list] = {}
        returned: Dict[tuple, list] = {}
        return_map: Dict[tuple, np.ndarray] = {}

        def compress_dispatch(c: int) -> None:
            """C1: per-source flat payloads for the chunk's tokens.

            No per-chunk argsort: the chunk's expert-major order is
            the gate plan's global permutation restricted to the
            chunk's (contiguous) token range, bit-identical to what
            sorting the chunk's kept assignments would produce —
            ``searchsorted`` re-bases it to chunk-local positions.
            A destination's rows are that order restricted to the
            experts it hosts (``nonzero`` preserves order, so under a
            contiguous placement this is exactly the historical
            contiguous slice); ``dst_counts`` aligns with the
            destination's ascending hosted-expert order.
            """
            payloads = []
            for src in workers:
                sel = members[src][c]
                if sel.size == 0:
                    continue
                gm = grouped_members[src][c]
                sorted_sel = plans[src].grouped_kept_pos[gm]
                order = np.searchsorted(sel, sorted_sel)
                g_experts = plans[src].grouped_expert_ids[gm]
                counts = np.bincount(
                    g_experts, minlength=num_experts
                ).astype(np.int64)
                dst_of_row = owner_of[g_experts]
                for dst in workers:
                    if dst in dead_workers:
                        continue
                    rowsel = np.nonzero(dst_of_row == dst)[0]
                    if rowsel.size == 0:
                        continue
                    dst_counts = counts[hosted[dst]]
                    rows = shards[src][
                        token_ids[src][sorted_sel[rowsel]]
                    ]
                    payloads.append((src, dst, rows, dst_counts))
                    # Positions within the chunk's kept-order list —
                    # how D2 puts returned rows back in gate order.
                    return_map[(c, src, dst)] = order[rowsel]
            pending_dispatch[c] = payloads

        def a2a_dispatch(c: int) -> None:
            """A1: codec roundtrip + memcpy into a pooled staging buffer."""
            wire_bytes = 0
            for src, dst, rows, counts in pending_dispatch.pop(c):
                buf = pool.take_copy(self._apply_codec(rows))
                dispatch_traffic[src, dst] += buf.nbytes
                if src != dst:
                    wire_bytes += buf.nbytes
                inbox.setdefault((c, dst), []).append((src, buf, counts))
            self._occupy_link(wire_bytes)

        def decompress_dispatch(c: int) -> None:
            """D1: each destination assembles one sorted-by-expert block."""
            for dst in workers:
                entries = inbox.pop((c, dst), None)
                if not entries:
                    continue
                src_offsets = [
                    np.concatenate([[0], np.cumsum(counts)])
                    for _, _, counts in entries
                ]
                pieces = []
                backs = [[] for _ in entries]
                counts_full = np.zeros(num_experts, dtype=np.int64)
                pos = 0
                # Expert-major over the destination's hosted experts
                # (ascending global id), sources in rank order within
                # an expert — the contiguous-segment layout
                # run_grouped consumes.
                for e_local, e in enumerate(hosted[dst]):
                    for i, (src, buf, counts) in enumerate(entries):
                        n = int(counts[e_local])
                        if n == 0:
                            continue
                        lo = int(src_offsets[i][e_local])
                        pieces.append(buf[lo : lo + n])
                        backs[i].append(np.arange(pos, pos + n))
                        pos += n
                    counts_full[e] = sum(
                        int(counts[e_local]) for _, _, counts in entries
                    )
                rows = np.concatenate(
                    pieces, axis=0, out=scratch_empty((pos, model_dim))
                )
                back_index = [
                    (entries[i][0], np.concatenate(backs[i]))
                    for i in range(len(entries))
                ]
                assembled[(c, dst)] = (rows, counts_full, back_index)
                for _, buf, _ in entries:
                    pool.release(buf)

        def run_experts(c: int) -> None:
            """E: grouped (or reference loop) expert execution."""
            for dst in workers:
                item = assembled.pop((c, dst), None)
                if item is None:
                    continue
                rows, counts_full, back_index = item
                if experts.expert_impl == "loop":
                    outs, offset = [], 0
                    for e in hosted[dst]:
                        n = int(counts_full[e])
                        if n == 0:
                            continue
                        outs.append(
                            experts.run_expert(
                                int(e),
                                Tensor(rows[offset : offset + n]),
                            ).data
                        )
                        offset += n
                    out_rows = np.concatenate(outs, axis=0)
                else:
                    out_rows = experts.run_grouped(
                        Tensor(rows), counts_full
                    ).data
                expert_out[(c, dst)] = (out_rows, back_index)

        def compress_combine(c: int) -> None:
            """C2: split results back per source, in payload row order."""
            returns = []
            for dst in workers:
                item = expert_out.pop((c, dst), None)
                if item is None:
                    continue
                out_rows, back_index = item
                for src, idx in back_index:
                    returns.append((dst, src, out_rows[idx]))
            pending_return[c] = returns

        def a2a_combine(c: int) -> None:
            """A2: codec roundtrip + pooled memcpy back to the owner."""
            wire_bytes = 0
            for dst, src, rows in pending_return.pop(c):
                buf = pool.take_copy(self._apply_codec(rows))
                combine_traffic[dst, src] += buf.nbytes
                if src != dst:
                    wire_bytes += buf.nbytes
                returned.setdefault((c, src), []).append((dst, buf))
            self._occupy_link(wire_bytes)

        def decompress_combine(c: int) -> None:
            """D2: weighted merge into the chunk's (disjoint) token rows."""
            for w in workers:
                sel = members[w][c]
                if sel.size == 0:
                    continue
                contrib = scratch_zeros((sel.size, model_dim))
                for dst, buf in returned.pop((c, w), []):
                    contrib[return_map.pop((c, w, dst))] = buf
                    pool.release(buf)
                # Accumulate in the gate's original assignment order:
                # bit-identical to the unchunked merge because every
                # contribution to one token lives in this chunk, in
                # the same relative order.
                np.add.at(
                    outputs[w],
                    token_ids[w][sel],
                    weights[w][sel][:, None] * contrib,
                )

        step = {
            TaskKind.C1: compress_dispatch,
            TaskKind.A1: a2a_dispatch,
            TaskKind.D1: decompress_dispatch,
            TaskKind.E: run_experts,
            TaskKind.C2: compress_combine,
            TaskKind.A2: a2a_combine,
            TaskKind.D2: decompress_combine,
        }

        def bind(kind: TaskKind, chunk: int):
            return lambda: step[kind](chunk)

        fns = {
            Task(kind, chunk): bind(kind, chunk)
            for chunk in range(r)
            for kind in step
        }
        if self.pipeline == "overlap":
            self.last_timeline = self._executor.run(r, fns)
        else:
            self.last_timeline = run_inline(r, fns)

        self.last_dispatch_traffic = A2ATraffic(dispatch_traffic)
        self.last_combine_traffic = A2ATraffic(combine_traffic)
        return outputs

    # -- the dense einsum reference (unchunked, phase-synchronous) -----------
    def _forward_dense_reference(
        self, shards: List[np.ndarray], gate_outputs: list
    ) -> List[np.ndarray]:
        """GShard reference semantics: capacity-padded (E, C, M) blocks.

        Kept exactly as the original phase-synchronous execution —
        dispatch all blocks, exchange, compute, exchange, combine —
        because its value is being the executable reference, not being
        fast; ``pipeline``/``num_chunks`` are ignored here.
        """
        from ..nn.tensor import Tensor

        experts: Experts = self.layer.experts
        num_experts = self.layer.gate.num_experts
        model_dim = self.layer.model_dim
        workers = range(self.num_workers)
        dead_workers = self._dead_workers
        owners = self._placement.owners

        # Dispatch: worker w builds, for each expert e, its (C, M)
        # capacity-padded buffer — the block it sends to e's owner.
        send_blocks = []  # [w][e] -> (C_w, M)
        for w in workers:
            out = gate_outputs[w]
            blocks = np.einsum(
                "tm,tec->ecm", shards[w], out.dispatch_mask
            )
            send_blocks.append(blocks)

        # First all-to-all (dispatch): exchange expert blocks.
        dispatch_traffic = np.zeros((self.num_workers, self.num_workers))
        inbox = [[None] * self.num_workers for _ in workers]  # [dst][src]
        for src in workers:
            for expert in range(num_experts):
                dst = owners[expert]
                if dst in dead_workers:
                    # Nothing is sent to a failed rank; the masked
                    # gating above already re-routed (dropped) every
                    # token that would have gone there.
                    continue
                payload = self._apply_codec(send_blocks[src][expert])
                dispatch_traffic[src, dst] += payload.nbytes
                if inbox[dst][src] is None:
                    inbox[dst][src] = {}
                inbox[dst][src][expert] = payload
        self.last_dispatch_traffic = A2ATraffic(dispatch_traffic)

        # Local expert computation on every worker, one grouped pass
        # over the received blocks sorted by expert (sources stay in
        # rank order within each expert); ``expert_impl="loop"`` keeps
        # the one-block-at-a-time reference path.
        outbox = [[None] * self.num_workers for _ in workers]  # [src][dst]
        combine_traffic = np.zeros((self.num_workers, self.num_workers))
        for w in workers:
            if w in dead_workers:
                # A dead worker computes nothing and returns nothing.
                for src in workers:
                    outbox[w][src] = {}
                continue
            entries = []  # (expert, src, block), block (C_src, M)
            for src in workers:
                for expert, block in inbox[w][src].items():
                    entries.append((expert, src, block))
            entries.sort(key=lambda item: item[0])
            results = [{} for _ in workers]  # per src
            if experts.expert_impl == "loop":
                for expert, src, block in entries:
                    out = experts.run_expert(expert, Tensor(block)).data
                    results[src][expert] = self._apply_codec(out)
                    combine_traffic[w, src] += results[src][expert].nbytes
            elif entries:
                counts = np.zeros(num_experts, dtype=np.int64)
                for expert, _, block in entries:
                    counts[expert] += block.shape[0]
                rows = np.concatenate(
                    [block for _, _, block in entries], axis=0
                )
                out_rows = experts.run_grouped(Tensor(rows), counts).data
                offset = 0
                for expert, src, block in entries:
                    out = out_rows[offset : offset + block.shape[0]]
                    offset += block.shape[0]
                    results[src][expert] = self._apply_codec(out)
                    combine_traffic[w, src] += results[src][expert].nbytes
            for src in workers:
                outbox[w][src] = results[src]
        self.last_combine_traffic = A2ATraffic(combine_traffic)

        # Second all-to-all (combine): results return to token owners,
        # which merge them with their own combine weights.
        outputs = []
        for w in workers:
            gate_out = gate_outputs[w]
            expert_out = np.zeros(
                (num_experts, gate_out.capacity, model_dim), dtype=np.float32
            )
            for owner in workers:
                for expert, out in outbox[owner][w].items():
                    expert_out[expert] = out
            merged = np.einsum(
                "ecm,tec->tm", expert_out, gate_out.combine_weights.data
            )
            outputs.append(merged.astype(np.float32))
        return outputs
