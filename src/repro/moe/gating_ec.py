"""Expert-choice routing (Zhou et al., cited in paper Section 8).

Instead of tokens choosing their top-k experts, each expert chooses
the top-C tokens by affinity — guaranteeing perfectly balanced expert
workloads by construction (no capacity overflow, no auxiliary loss
needed).  The paper lists this as one of the orthogonal MoE-algorithm
directions its system composes with; implementing it behind the same
:class:`~repro.moe.gating.GateOutput` interface demonstrates exactly
that composability: the MoE layer, the compression transport, the
profiler and the scheduler all work unchanged.

Routing is emitted in :class:`GateOutput`'s *flat* sparse form: the
selection ``chosen[e, c] = t`` flattens (expert-major, slot order
within each expert) into aligned ``(N,)`` token/expert/slot index
arrays plus a differentiable ``(N,)`` tensor of affinities — the same
index-based representation :class:`~repro.moe.gating.TopKGate` emits
token-major, so ``dispatch_mode="sparse"`` covers this gate too and
the dense ``(T, E, C)`` einsum operands exist only as lazy
densifications for the reference backend.  A token selected by
several experts appears once per selecting expert; every ``(expert,
slot)`` destination holds exactly one token.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.modules import Linear, Module
from ..nn.tensor import Tensor, is_inference
from .gating import GateOutput
from .routing import plan_for_expert_choice


class ExpertChoiceGate(Module):
    """Experts pick tokens: guaranteed-balanced routing."""

    def __init__(
        self,
        model_dim: int,
        num_experts: int,
        rng: np.random.Generator,
        capacity_factor: float = 1.0,
        top_k: int = 2,
    ):
        super().__init__()
        if num_experts < 1:
            raise ValueError(f"num_experts must be >= 1, got {num_experts}")
        if capacity_factor <= 0:
            raise ValueError(
                f"capacity_factor must be positive, got {capacity_factor}"
            )
        self.num_experts = num_experts
        self.capacity_factor = capacity_factor
        #: Average experts per token the capacity budget allows
        #: (kept as ``top_k`` for interface parity with TopKGate).
        self.top_k = top_k
        self.wg = Linear(model_dim, num_experts, rng, bias=False)

    def capacity(self, num_tokens: int) -> int:
        """Tokens each expert selects: C = ceil(f * k * T / E).

        Zero tokens need zero slots; otherwise clamped to
        ``[1, num_tokens]`` (an expert cannot select more tokens than
        exist).
        """
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be >= 0, got {num_tokens}")
        if num_tokens == 0:
            return 0
        cap = int(
            np.ceil(
                self.capacity_factor * self.top_k * num_tokens / self.num_experts
            )
        )
        return max(1, min(cap, num_tokens))

    def forward(self, tokens: Tensor, capacity=None) -> GateOutput:
        if tokens.ndim != 2:
            raise ValueError(
                f"gate expects (tokens, model_dim), got shape {tokens.shape}"
            )
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        num_tokens = tokens.shape[0]
        cap = capacity if capacity is not None else self.capacity(num_tokens)
        cap = min(cap, num_tokens)

        logits = self.wg(tokens)
        probs = F.softmax(logits, axis=-1)  # (T, E)
        # Perfectly balanced by construction -> aux loss constant 1
        # (wired to the gate's tape so an empty backward still works;
        # the forward-only path skips the tape-keeping sum).
        if is_inference():
            aux = Tensor(np.float32(1.0))
        else:
            aux = Tensor(np.float32(1.0)) + (probs.sum() * 0.0)

        if cap == 0:
            # Zero tokens (or zero slots): empty flat routing.
            empty = np.zeros(0, dtype=np.int64)
            return GateOutput(
                aux_loss=aux,
                expert_load=np.zeros(self.num_experts, dtype=np.int64),
                dropped_tokens=num_tokens,
                capacity=0,
                expert_indices=empty,
                slot_indices=empty.copy(),
                token_indices=empty.copy(),
                gate_weights=probs[empty, empty.copy()],
                num_tokens=num_tokens,
                num_experts=self.num_experts,
                plan=plan_for_expert_choice(
                    empty, empty, empty, self.num_experts, num_tokens, 0
                ),
            )

        # Each expert picks its top-cap tokens by affinity.  Flatten
        # expert-major: assignment n = (expert n // cap, slot n % cap).
        affinity = probs.data.T  # (E, T)
        chosen = F.top_k_indices(affinity, cap, axis=-1)  # (E, cap)
        token_ids = chosen.reshape(-1)  # (N,) with N = E * cap
        expert_ids = np.repeat(np.arange(self.num_experts), cap)
        slot_ids = np.tile(np.arange(cap), self.num_experts)

        # Combine weights: each selected pair's (differentiable)
        # affinity probs[t, e], gathered along the tape.
        gate_weights = probs[token_ids, expert_ids]  # (N,)

        load = np.full(self.num_experts, cap, dtype=np.int64)
        dropped = int(num_tokens - len(np.unique(token_ids)))
        # The flat arrays are structurally expert-major sorted with no
        # drops, so the routing plan is the identity permutation — no
        # sort of any kind.
        plan = plan_for_expert_choice(
            token_ids, expert_ids, slot_ids,
            self.num_experts, num_tokens, cap,
        )
        return GateOutput(
            aux_loss=aux,
            expert_load=load,
            dropped_tokens=dropped,
            capacity=cap,
            expert_indices=expert_ids,
            slot_indices=slot_ids,
            token_indices=token_ids,
            gate_weights=gate_weights,
            num_tokens=num_tokens,
            num_experts=self.num_experts,
            plan=plan,
        )
