"""Expert-choice routing (Zhou et al., cited in paper Section 8).

Instead of tokens choosing their top-k experts, each expert chooses
the top-C tokens by affinity — guaranteeing perfectly balanced expert
workloads by construction (no capacity overflow, no auxiliary loss
needed).  The paper lists this as one of the orthogonal MoE-algorithm
directions its system composes with; implementing it behind the same
:class:`~repro.moe.gating.GateOutput` interface demonstrates exactly
that composability: the MoE layer, the compression transport, the
profiler and the scheduler all work unchanged.
"""

from __future__ import annotations

import numpy as np

from ..nn import functional as F
from ..nn.modules import Linear, Module
from ..nn.tensor import Tensor, einsum
from .gating import GateOutput


class ExpertChoiceGate(Module):
    """Experts pick tokens: guaranteed-balanced routing."""

    def __init__(
        self,
        model_dim: int,
        num_experts: int,
        rng: np.random.Generator,
        capacity_factor: float = 1.0,
        top_k: int = 2,
    ):
        super().__init__()
        if num_experts < 1:
            raise ValueError(f"num_experts must be >= 1, got {num_experts}")
        if capacity_factor <= 0:
            raise ValueError(
                f"capacity_factor must be positive, got {capacity_factor}"
            )
        self.num_experts = num_experts
        self.capacity_factor = capacity_factor
        #: Average experts per token the capacity budget allows
        #: (kept as ``top_k`` for interface parity with TopKGate).
        self.top_k = top_k
        self.wg = Linear(model_dim, num_experts, rng, bias=False)

    def capacity(self, num_tokens: int) -> int:
        """Tokens each expert selects: C = ceil(f * k * T / E).

        Zero tokens need zero slots; otherwise clamped to
        ``[1, num_tokens]`` (an expert cannot select more tokens than
        exist).
        """
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be >= 0, got {num_tokens}")
        if num_tokens == 0:
            return 0
        cap = int(
            np.ceil(
                self.capacity_factor * self.top_k * num_tokens / self.num_experts
            )
        )
        return max(1, min(cap, num_tokens))

    def forward(self, tokens: Tensor, capacity=None) -> GateOutput:
        if tokens.ndim != 2:
            raise ValueError(
                f"gate expects (tokens, model_dim), got shape {tokens.shape}"
            )
        num_tokens = tokens.shape[0]
        cap = capacity if capacity is not None else self.capacity(num_tokens)
        cap = min(cap, num_tokens)

        logits = self.wg(tokens)
        probs = F.softmax(logits, axis=-1)  # (T, E)

        if cap == 0:
            # Zero tokens (or zero slots): empty routing, tape intact.
            empty = np.zeros((num_tokens, self.num_experts, 0), np.float32)
            return GateOutput(
                dispatch_mask=empty,
                combine_weights=Tensor(empty.copy()),
                aux_loss=Tensor(np.float32(1.0)) + (probs.sum() * 0.0),
                expert_load=np.zeros(self.num_experts, dtype=np.int64),
                dropped_tokens=num_tokens,
                capacity=0,
            )

        # Each expert picks its top-cap tokens by affinity.
        affinity = probs.data.T  # (E, T)
        chosen = F.top_k_indices(affinity, cap, axis=-1)  # (E, cap)

        dispatch = np.zeros(
            (num_tokens, self.num_experts, cap), dtype=np.float32
        )
        expert_ids = np.repeat(np.arange(self.num_experts), cap)
        slot_ids = np.tile(np.arange(cap), self.num_experts)
        token_ids = chosen.reshape(-1)
        dispatch[token_ids, expert_ids, slot_ids] = 1.0

        # Combine weights: the (differentiable) affinity of each
        # selected (token, expert) pair, scattered into (T, E, cap).
        combine = einsum(
            "te,tec->tec", probs, Tensor(dispatch)
        )

        load = np.full(self.num_experts, cap, dtype=np.int64)
        dropped = int(num_tokens - len(np.unique(token_ids)))
        # Perfectly balanced by construction -> aux loss constant 1.
        aux = Tensor(np.float32(1.0)) + (probs.sum() * 0.0)
        return GateOutput(
            dispatch_mask=dispatch,
            combine_weights=combine,
            aux_loss=aux,
            expert_load=load,
            dropped_tokens=dropped,
            capacity=cap,
        )
