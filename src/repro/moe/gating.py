"""Top-k gating with expert capacity (GShard-style).

The gate is a small learned linear layer followed by a softmax (paper
Section 2.1).  Each token selects its top-k experts; per-expert intake
is capped at the capacity ``C = ceil(f * k * B * L / E)`` of paper
Eq. (1), with overflow tokens dropped (their combine weight is zero,
so they pass through the MoE layer as zeros — exactly GShard's
behaviour).  Routing *decisions* are discrete and not differentiated;
the combine *weights* carry gradient through the softmax, and the
standard load-balancing auxiliary loss keeps the router from
collapsing onto few experts.

Slot assignment runs through the fused routing kernel
(:func:`~repro.moe.routing.route_fused`): one stable argsort over the
flat ``(k*T,)`` expert ids yields the capacity slots, the drop mask,
per-expert counts *and* the expert-major permutation every downstream
consumer needs, cached on :class:`GateOutput` as a
:class:`~repro.moe.routing.RoutingPlan`.  The ordering is identical
to GShard's greedy FCFS rule — all first choices in token order, then
all second choices — so routing results are bit-for-bit the same as
the reference loop's (and as :func:`assign_capacity_slots`, the
retained ``O(k * T * E)`` one-hot cumsum formulation the parity suite
checks against).

:class:`GateOutput` carries the routing natively in *sparse* index
form (``(T, k)`` expert/slot indices plus ``(T, k)`` differentiable
combine weights); the dense GShard ``(T, E, C)`` masks used by the
reference einsum backend are materialized lazily on first access, so
the sparse hot path never pays for them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.modules import Linear, Module
from ..nn.tensor import Tensor, is_inference
from .routing import RoutingPlan, plan_from_indices, route_fused


class GateOutput:
    """Everything the MoE layer needs to route one batch of tokens.

    Two equivalent representations of the same routing decision:

    * sparse — integer index arrays naming each routing assignment
      plus a differentiable tensor of combine weights, in one of two
      layouts (below);
    * dense — ``dispatch_mask`` is a raw ``(T, E, C)`` 0/1 array and
      ``combine_weights`` the same shape carrying the differentiable
      gate probabilities (GShard's einsum operands).

    The sparse layouts:

    * **token-major** ``(T, k)`` — row t holds token t's k choices:
      ``expert_indices``/``slot_indices`` are ``(T, k)`` arrays (slot
      ``-1`` marks a dropped assignment) and ``gate_weights`` a
      differentiable ``(T, k)`` tensor of combine weights (zero at
      dropped entries).  This is :class:`TopKGate`'s natural form.
    * **flat** ``(N,)`` — one entry per assignment with no per-token
      structure: ``expert_indices``/``slot_indices``/``token_indices``
      are aligned ``(N,)`` arrays and ``gate_weights`` a
      differentiable ``(N,)`` tensor.  Gates whose assignment count
      varies per token — expert-choice, where each *expert* picks its
      top-C tokens and a token may appear 0..E times — emit this form
      (``token_indices`` is None in the token-major layout, where the
      row index is the token).

    Every gate now constructs a sparse form; the dense arrays are
    densified lazily on first property access, so the index-based hot
    path never pays for them and the dense einsum backend remains a
    pure reference path.
    """

    def __init__(
        self,
        *,
        aux_loss: Tensor,
        expert_load: np.ndarray,
        dropped_tokens: int,
        capacity: int,
        dispatch_mask: Optional[np.ndarray] = None,
        combine_weights: Optional[Tensor] = None,
        expert_indices: Optional[np.ndarray] = None,
        slot_indices: Optional[np.ndarray] = None,
        token_indices: Optional[np.ndarray] = None,
        gate_weights: Optional[Tensor] = None,
        num_tokens: Optional[int] = None,
        num_experts: Optional[int] = None,
        plan: Optional[RoutingPlan] = None,
    ):
        self.aux_loss = aux_loss
        self.expert_load = expert_load
        self.dropped_tokens = dropped_tokens
        self.capacity = capacity
        self.expert_indices = expert_indices
        self.slot_indices = slot_indices
        self.token_indices = token_indices
        self.gate_weights = gate_weights
        self._dispatch_mask = dispatch_mask
        self._combine_weights = combine_weights
        self._plan = plan
        if expert_indices is not None:
            if num_experts is None:
                raise ValueError("sparse GateOutput needs num_experts")
            if expert_indices.ndim == 1:
                if token_indices is None or num_tokens is None:
                    raise ValueError(
                        "flat (N,) sparse routing needs token_indices "
                        "and num_tokens"
                    )
                self._num_tokens = num_tokens
            else:
                self._num_tokens = (
                    num_tokens
                    if num_tokens is not None
                    else expert_indices.shape[0]
                )
            self._num_experts = num_experts
        elif dispatch_mask is not None:
            self._num_tokens = dispatch_mask.shape[0]
            self._num_experts = dispatch_mask.shape[1]
        else:
            raise ValueError(
                "GateOutput needs either a dense dispatch_mask or "
                "sparse indices plus num_experts"
            )

    # -- bookkeeping ---------------------------------------------------
    @property
    def num_tokens(self) -> int:
        """Tokens routed in this batch."""
        return self._num_tokens

    @property
    def num_experts(self) -> int:
        return self._num_experts

    @property
    def has_sparse(self) -> bool:
        """Whether index-based routing fields are available."""
        return self.expert_indices is not None

    @property
    def plan(self) -> RoutingPlan:
        """The routing's :class:`~repro.moe.routing.RoutingPlan`.

        Gates that route through :func:`~repro.moe.routing.route_fused`
        attach the plan at construction; otherwise (and for degraded
        routings from :meth:`with_experts_dropped`, whose slot holes
        break the fused kernel's FCFS-prefix invariant) it is built
        lazily — one stable argsort — from the actual index arrays and
        cached.  Every ordering consumer (sparse/grouped dispatch and
        combine, the chunked layer path, expert-parallel C1) reads
        slices of this one permutation.
        """
        if self._plan is None:
            if not self.has_sparse:
                raise ValueError(
                    "dense-only GateOutput carries no routing plan"
                )
            self._plan = plan_from_indices(
                self.expert_indices,
                self.slot_indices,
                self.token_indices,
                self._num_experts,
                self._num_tokens,
                self.capacity,
            )
        return self._plan

    @property
    def drop_fraction(self) -> float:
        """Dropped assignments per token (0 when capacity suffices)."""
        if self.num_tokens == 0:
            return 0.0
        return self.dropped_tokens / self.num_tokens

    # -- graceful degradation ------------------------------------------
    def with_experts_dropped(self, dead_experts) -> "GateOutput":
        """Routing with every assignment to ``dead_experts`` dropped.

        This is the numerical substrate's dead-worker degradation: a
        worker lost mid-step takes its expert shards with it, and the
        tokens routed there are handled by the layer's existing
        capacity-drop semantics — slot ``-1``, zero combine weight,
        pass through as zeros.  Token-major (top-k) routing
        additionally *renormalizes* each token's weights over its
        surviving experts (differentiably, through the same masked
        softmax-renorm the gate itself uses), so a token that keeps
        one of its two experts leans fully on it; flat expert-choice
        routing carries raw unnormalized affinities, so there the dead
        entries are only zeroed, matching its combine semantics.

        Returns a new :class:`GateOutput` sharing the untouched index
        arrays; dense masks re-densify lazily from the updated
        routing.  An empty ``dead_experts`` returns ``self``.

        Dropping is per-forward and stateless: recovery (see
        :class:`repro.faults.recovery.RecoveryController`) does not
        "undo" a drop — once the lost experts are re-instantiated on
        survivors, callers simply stop passing them here and the gate
        output returns to the full expert count with no renorm at all.
        """
        dead = frozenset(int(e) for e in dead_experts)
        if not dead:
            return self
        if not self.has_sparse:
            raise ValueError(
                "with_experts_dropped needs sparse routing indices"
            )
        for e in dead:
            if not 0 <= e < self._num_experts:
                raise ValueError(
                    f"dead expert {e} out of range [0, {self._num_experts})"
                )
        dead_mask = np.zeros(self._num_experts, dtype=bool)
        dead_mask[list(dead)] = True
        hit = dead_mask[self.expert_indices] & (self.slot_indices >= 0)
        newly_dropped = int(hit.sum())
        slot_indices = np.where(hit, -1, self.slot_indices)
        expert_load = self.expert_load.copy()
        expert_load[dead_mask] = 0
        survives = Tensor(
            ((self.slot_indices >= 0) & ~hit).astype(np.float32)
        )
        if self.expert_indices.ndim == 2:  # token-major: renormalize
            masked = self.gate_weights * survives
            denom = masked.sum(axis=-1, keepdims=True) + 1e-9
            weights = masked / denom
        else:  # flat: raw affinities, zero the dead entries
            weights = self.gate_weights * survives
        return GateOutput(
            aux_loss=self.aux_loss,
            expert_load=expert_load,
            dropped_tokens=self.dropped_tokens + newly_dropped,
            capacity=self.capacity,
            expert_indices=self.expert_indices,
            slot_indices=slot_indices,
            token_indices=self.token_indices,
            gate_weights=weights,
            num_tokens=self._num_tokens,
            num_experts=self._num_experts,
        )

    # -- lazy densification --------------------------------------------
    def _kept_coords(self):
        """(token, expert, slot, weight-index) arrays of kept assignments.

        The last element indexes ``gate_weights`` — ``(token, choice)``
        pairs in the token-major layout, flat positions in the flat
        layout — so ``gate_weights.data[w_idx]`` (or the differentiable
        ``gate_weights[w_idx]``) selects each kept assignment's weight
        in either form.  Served from the cached :attr:`plan` — the
        ``np.nonzero`` re-scan this used to do is part of what the
        fused kernel already computed.
        """
        plan = self.plan
        return (
            plan.kept_token_ids,
            plan.kept_expert_ids,
            plan.kept_slot_ids,
            plan.kept_weight_index,
        )

    @property
    def dispatch_mask(self) -> np.ndarray:
        """Raw (T, E, C) 0/1 routing mask (densified on demand)."""
        if self._dispatch_mask is None:
            if is_inference():
                raise RuntimeError(
                    "refusing to densify dispatch_mask under "
                    "inference_mode(): the (T, E, C) masks exist only "
                    "for the dense reference backend; the forward-only "
                    "path must stay on the sparse RoutingPlan"
                )
            token_ids, expert_ids, slot_ids, _ = self._kept_coords()
            mask = np.zeros(
                (self._num_tokens, self._num_experts, self.capacity),
                dtype=np.float32,
            )
            mask[token_ids, expert_ids, slot_ids] = 1.0
            self._dispatch_mask = mask
        return self._dispatch_mask

    @property
    def combine_weights(self) -> Tensor:
        """(T, E, C) differentiable weights (densified on demand).

        The scatter keeps the tape: the dense gradient at each kept
        (t, e, c) coordinate flows back to the corresponding
        ``gate_weights`` entry, exactly as the reference einsum
        formulation propagates it.
        """
        if self._combine_weights is None:
            if is_inference():
                raise RuntimeError(
                    "refusing to densify combine_weights under "
                    "inference_mode(): the (T, E, C) masks exist only "
                    "for the dense reference backend; the forward-only "
                    "path must stay on the sparse RoutingPlan"
                )
            norm = self.gate_weights
            token_ids, expert_ids, slot_ids, w_idx = self._kept_coords()
            shape = (self._num_tokens, self._num_experts, self.capacity)
            data = np.zeros(shape, dtype=np.float32)
            data[token_ids, expert_ids, slot_ids] = norm.data[w_idx]

            def backward(g):
                grad = np.zeros(norm.shape, dtype=np.float32)
                grad[w_idx] = g[token_ids, expert_ids, slot_ids]
                return ((norm, grad),)

            self._combine_weights = norm._make(data, (norm,), backward)
        return self._combine_weights


def assign_capacity_slots(
    top_idx: np.ndarray, num_experts: int, capacity: int
) -> np.ndarray:
    """Vectorized GShard FCFS slot assignment (legacy reference).

    The hot path is :func:`~repro.moe.routing.route_fused`, which
    produces bit-identical slots from one sort; this one-hot cumsum
    formulation stays as the independently-derived reference the
    parity suites compare against (it is ``O(T*k*E)`` in time *and*
    memory, the blow-up the fused kernel removes).

    ``top_idx`` is the (T, k) expert choice of every token.  Choices
    are processed choice-major — all first choices in token order,
    then all second choices — and each assignment takes the next free
    slot of its expert, or is dropped (slot ``-1``) once the expert's
    ``capacity`` slots are full.  A cumulative sum over the
    choice-major one-hot expert mask computes every assignment's
    position within its expert in one shot; positions beyond capacity
    are exactly the assignments the greedy loop would skip, because a
    skipped assignment never frees a slot.
    """
    num_tokens, top_k = top_idx.shape
    if num_tokens == 0 or capacity == 0:
        return np.full((num_tokens, top_k), -1, dtype=np.int64)
    flat_experts = top_idx.T.reshape(-1)  # choice-major (k*T,)
    onehot = flat_experts[:, None] == np.arange(num_experts)[None, :]
    ranks = onehot.cumsum(axis=0, dtype=np.int64) - 1
    flat_positions = ranks[np.arange(flat_experts.shape[0]), flat_experts]
    flat_positions = np.where(flat_positions < capacity, flat_positions, -1)
    return flat_positions.reshape(top_k, num_tokens).T


class TopKGate(Module):
    """Learned router: ``softmax(x W_g)`` with top-k selection."""

    def __init__(
        self,
        model_dim: int,
        num_experts: int,
        rng: np.random.Generator,
        top_k: int = 2,
        capacity_factor: float = 1.0,
        noise_std: float = 0.0,
    ):
        super().__init__()
        if top_k < 1 or top_k > num_experts:
            raise ValueError(
                f"top_k must be in [1, {num_experts}], got {top_k}"
            )
        if capacity_factor <= 0:
            raise ValueError(
                f"capacity_factor must be positive, got {capacity_factor}"
            )
        self.num_experts = num_experts
        self.top_k = top_k
        self.capacity_factor = capacity_factor
        self.noise_std = noise_std
        self.wg = Linear(model_dim, num_experts, rng, bias=False)
        self._rng = rng

    def capacity(self, num_tokens: int) -> int:
        """Paper Eq. (1) with B*L folded into ``num_tokens``.

        Clamped to ``[1, num_tokens]``: a token contributes at most
        one assignment per expert (its top-k experts are distinct), so
        slots beyond ``num_tokens`` can never fill and would only pad
        every (E, C, M) buffer; zero tokens need zero slots.
        """
        if num_tokens < 0:
            raise ValueError(f"num_tokens must be >= 0, got {num_tokens}")
        if num_tokens == 0:
            return 0
        cap = int(
            np.ceil(
                self.capacity_factor * self.top_k * num_tokens / self.num_experts
            )
        )
        return max(min(cap, num_tokens), 1)

    def forward(self, tokens: Tensor, capacity: Optional[int] = None) -> GateOutput:
        """Route a flat (num_tokens, model_dim) tensor.

        Returns sparse (T, k) routing indices/weights; the dense
        (T, E, C) masks densify lazily from them.
        """
        if tokens.ndim != 2:
            raise ValueError(
                f"gate expects (tokens, model_dim), got shape {tokens.shape}"
            )
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        num_tokens = tokens.shape[0]
        cap = capacity if capacity is not None else self.capacity(num_tokens)

        logits = self.wg(tokens)
        if self.training and self.noise_std > 0:
            noise = self._rng.standard_normal(logits.shape).astype(np.float32)
            logits = logits + Tensor(noise * self.noise_std)
        probs = F.softmax(logits, axis=-1)

        # Discrete routing on raw values.
        raw = probs.data
        top_idx = F.top_k_indices(raw, self.top_k, axis=-1)  # (T, k)

        # One fused pass: capacity slots (greedily in token order per
        # expert, with priority to lower-ranked choices — GShard
        # processes the k-th choice after all (k-1)-th choices), the
        # drop count, per-expert fill, AND the expert-major
        # permutation every downstream consumer reuses.
        plan = route_fused(top_idx, self.num_experts, cap)
        positions = plan.slot_indices
        kept = positions >= 0
        dropped = plan.dropped_assignments
        fill = plan.expert_load

        # Combine weights: the gate probability of each kept
        # assignment, renormalized over the token's kept experts.
        gathered = F.take_along_axis(probs, top_idx, axis=-1)  # (T, k)
        kept_f = kept.astype(np.float32)
        denom = (gathered * Tensor(kept_f)).sum(axis=-1, keepdims=True) + 1e-9
        norm = gathered * Tensor(kept_f) / denom  # (T, k), 0 at dropped

        # First-choice counts fall out of the plan's fused per-
        # (expert, choice) counts — no separate bincount pass.  The
        # auxiliary loss only exists to regularize training; the
        # forward-only path skips it outright (gradient bookkeeping
        # for a loss nobody will backprop).
        if is_inference():
            aux = Tensor(np.float32(0.0))
        else:
            aux = load_balancing_loss(
                probs,
                None,
                self.num_experts,
                first_choice_counts=plan.choice_counts[:, 0],
            )
        return GateOutput(
            aux_loss=aux,
            expert_load=fill,
            dropped_tokens=dropped,
            capacity=cap,
            expert_indices=top_idx,
            slot_indices=positions,
            gate_weights=norm,
            num_tokens=num_tokens,
            num_experts=self.num_experts,
            plan=plan,
        )


def load_balancing_loss(
    probs: Tensor,
    first_choice: Optional[np.ndarray],
    num_experts: int,
    first_choice_counts: Optional[np.ndarray] = None,
) -> Tensor:
    """GShard / Switch auxiliary loss: ``E * sum_e m_e * c_e``.

    ``m_e`` is the mean gate probability of expert e over the batch
    (differentiable); ``c_e`` the fraction of tokens whose first
    choice is e (discrete).  Minimized at uniform routing where it
    equals 1.  The per-expert first-choice counts may be passed in
    precomputed (``first_choice_counts``, e.g. a
    :attr:`~repro.moe.routing.RoutingPlan.choice_counts` column) in
    place of the raw ``first_choice`` id array.
    """
    num_tokens = probs.shape[0]
    if num_tokens == 0:
        # No tokens: a zero loss still wired to the gate's tape.
        return probs.sum() * 0.0
    if first_choice_counts is None:
        first_choice_counts = np.bincount(
            first_choice, minlength=num_experts
        )
    counts = first_choice_counts.astype(np.float32)
    frac = counts / max(num_tokens, 1)
    mean_probs = probs.mean(axis=0)  # (E,)
    return (mean_probs * Tensor(frac)).sum() * float(num_experts)
