"""Top-k gating with expert capacity (GShard-style).

The gate is a small learned linear layer followed by a softmax (paper
Section 2.1).  Each token selects its top-k experts; per-expert intake
is capped at the capacity ``C = ceil(f * k * B * L / E)`` of paper
Eq. (1), with overflow tokens dropped (their combine weight is zero,
so they pass through the MoE layer as zeros — exactly GShard's
behaviour).  Routing *decisions* are discrete and not differentiated;
the combine *weights* carry gradient through the softmax, and the
standard load-balancing auxiliary loss keeps the router from
collapsing onto few experts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.modules import Linear, Module
from ..nn.tensor import Tensor


@dataclass
class GateOutput:
    """Everything the MoE layer needs to route one batch of tokens.

    ``dispatch_mask`` is a raw (tokens, experts, capacity) 0/1 array;
    ``combine_weights`` the same shape carrying differentiable gate
    probabilities; ``aux_loss`` the load-balancing loss tensor.
    """

    dispatch_mask: np.ndarray
    combine_weights: Tensor
    aux_loss: Tensor
    expert_load: np.ndarray
    dropped_tokens: int
    capacity: int

    @property
    def num_tokens(self) -> int:
        """Tokens routed in this batch."""
        return self.dispatch_mask.shape[0]

    @property
    def drop_fraction(self) -> float:
        """Dropped assignments per token (0 when capacity suffices)."""
        if self.num_tokens == 0:
            return 0.0
        return self.dropped_tokens / self.num_tokens


class TopKGate(Module):
    """Learned router: ``softmax(x W_g)`` with top-k selection."""

    def __init__(
        self,
        model_dim: int,
        num_experts: int,
        rng: np.random.Generator,
        top_k: int = 2,
        capacity_factor: float = 1.0,
        noise_std: float = 0.0,
    ):
        super().__init__()
        if top_k < 1 or top_k > num_experts:
            raise ValueError(
                f"top_k must be in [1, {num_experts}], got {top_k}"
            )
        if capacity_factor <= 0:
            raise ValueError(
                f"capacity_factor must be positive, got {capacity_factor}"
            )
        self.num_experts = num_experts
        self.top_k = top_k
        self.capacity_factor = capacity_factor
        self.noise_std = noise_std
        self.wg = Linear(model_dim, num_experts, rng, bias=False)
        self._rng = rng

    def capacity(self, num_tokens: int) -> int:
        """Paper Eq. (1) with B*L folded into ``num_tokens``."""
        cap = int(
            np.ceil(
                self.capacity_factor * self.top_k * num_tokens / self.num_experts
            )
        )
        return max(cap, 1)

    def forward(self, tokens: Tensor, capacity: Optional[int] = None) -> GateOutput:
        """Route a flat (num_tokens, model_dim) tensor.

        Returns masks/weights shaped (tokens, experts, capacity).
        """
        if tokens.ndim != 2:
            raise ValueError(
                f"gate expects (tokens, model_dim), got shape {tokens.shape}"
            )
        num_tokens = tokens.shape[0]
        cap = capacity if capacity is not None else self.capacity(num_tokens)

        logits = self.wg(tokens)
        if self.training and self.noise_std > 0:
            noise = self._rng.standard_normal(logits.shape).astype(np.float32)
            logits = logits + Tensor(noise * self.noise_std)
        probs = F.softmax(logits, axis=-1)

        # Discrete routing on raw values.
        raw = probs.data
        top_idx = F.top_k_indices(raw, self.top_k, axis=-1)  # (T, k)

        # Assign capacity slots greedily in token order, per expert,
        # with priority to lower-ranked (higher-probability) choices —
        # GShard processes the k-th choice after all (k-1)-th choices.
        positions = np.full((num_tokens, self.top_k), -1, dtype=np.int64)
        fill = np.zeros(self.num_experts, dtype=np.int64)
        for choice in range(self.top_k):
            experts = top_idx[:, choice]
            for token in range(num_tokens):
                e = experts[token]
                if fill[e] < cap:
                    positions[token, choice] = fill[e]
                    fill[e] += 1

        kept = positions >= 0
        dropped = int((~kept).sum())

        dispatch = np.zeros((num_tokens, self.num_experts, cap), dtype=np.float32)
        token_ids, choice_ids = np.nonzero(kept)
        expert_ids = top_idx[token_ids, choice_ids]
        slot_ids = positions[token_ids, choice_ids]
        dispatch[token_ids, expert_ids, slot_ids] = 1.0

        # Combine weights: the gate probability of each kept
        # assignment, renormalized over the token's kept experts.
        gathered = probs[np.arange(num_tokens)[:, None], top_idx]  # (T, k) Tensor
        kept_f = kept.astype(np.float32)
        denom = (gathered * Tensor(kept_f)).sum(axis=-1, keepdims=True) + 1e-9
        norm = gathered * Tensor(kept_f) / denom  # (T, k)

        # Scatter normalized weights into (T, E, C) differentiably:
        # weight[t, e, c] = sum_k norm[t, k] * dispatch_onehot[t, k, e, c]
        scatter = np.zeros(
            (num_tokens, self.top_k, self.num_experts, cap), dtype=np.float32
        )
        scatter[token_ids, choice_ids, expert_ids, slot_ids] = 1.0
        from ..nn.tensor import einsum

        combine = einsum("tk,tkec->tec", norm, Tensor(scatter))

        aux = load_balancing_loss(probs, top_idx[:, 0], self.num_experts)
        return GateOutput(
            dispatch_mask=dispatch,
            combine_weights=combine,
            aux_loss=aux,
            expert_load=fill.copy(),
            dropped_tokens=dropped,
            capacity=cap,
        )


def load_balancing_loss(
    probs: Tensor, first_choice: np.ndarray, num_experts: int
) -> Tensor:
    """GShard / Switch auxiliary loss: ``E * sum_e m_e * c_e``.

    ``m_e`` is the mean gate probability of expert e over the batch
    (differentiable); ``c_e`` the fraction of tokens whose first
    choice is e (discrete).  Minimized at uniform routing where it
    equals 1.
    """
    counts = np.bincount(first_choice, minlength=num_experts).astype(np.float32)
    frac = counts / max(first_choice.shape[0], 1)
    mean_probs = probs.mean(axis=0)  # (E,)
    return (mean_probs * Tensor(frac)).sum() * float(num_experts)
