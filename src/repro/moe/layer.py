"""The MoE layer: gate -> dispatch -> (A2A) -> experts -> (A2A) -> combine.

This is the *numerical* MoE layer used by models and convergence
experiments.  Timing of its distributed execution lives in
:mod:`repro.core` / :mod:`repro.systems`; here the dispatch and
combine all-to-alls appear as their mathematical effect plus an
optional compressor roundtrip — the payload of each A2A is compressed
before transport and decompressed after, so a lossy codec corrupts
exactly the values it corrupts in the real system (paper Section 6.2).

The codec is applied to *both* directions, as in the real system: the
forward A2A ships compressed activations and the corresponding
backward A2A ships compressed gradients (the wire is the wire).  The
transformation itself is not differentiated — the error acts as noise
on values and on gradients, which is why coarse per-tensor INT8
measurably hurts convergence (gradients have wide dynamic range)
while block-scaled ZFP does not (paper Table 6 and the gradient
discussion in Section 7).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

import numpy as np

from ..compression.base import Compressor
from ..nn.modules import Module
from ..nn.tensor import Tensor, is_inference
from .dispatch import (
    DISPATCH_MODES,
    GroupedRouting,
    combine,
    combine_grouped,
    combine_sparse,
    dispatch,
    dispatch_grouped,
    dispatch_sparse,
)
from .experts import EXPERT_IMPLS, Experts
from .gating import GateOutput, TopKGate

#: Backend used when ``MoELayer(dispatch_mode=None)`` — see
#: :func:`default_dispatch_mode`.
_default_dispatch_mode = "sparse"


@contextmanager
def default_dispatch_mode(mode: str):
    """Temporarily change the backend new ``MoELayer``s default to.

    Lets experiments that construct models deep inside a stack (e.g.
    the Table 6 convergence study, whose recorded trajectories were
    measured on the dense reference backend) pin a backend without
    threading ``dispatch_mode`` through every constructor.
    """
    global _default_dispatch_mode
    if mode not in DISPATCH_MODES:
        raise ValueError(
            f"unknown dispatch_mode {mode!r}; "
            f"expected one of {DISPATCH_MODES}"
        )
    previous = _default_dispatch_mode
    _default_dispatch_mode = mode
    try:
        yield
    finally:
        _default_dispatch_mode = previous


class MoELayer(Module):
    """Sparsely activated feed-forward layer (paper Fig. 1).

    Parameters mirror the paper's Table 2 notation: ``model_dim`` M,
    ``hidden_dim`` H, ``num_experts`` E, ``top_k`` k and
    ``capacity_factor`` f.

    ``dispatch_mode`` selects the routing backend (``None`` means the
    process default, normally sparse — see
    :func:`default_dispatch_mode`): ``"sparse"`` moves tokens by
    integer index — ``O(N * M)`` in the number of routed assignments,
    forward and backward — while ``"dense"`` runs the GShard reference
    einsums over one-hot (T, E, C) masks.  Both compute identical
    outputs and gradients for every gate type: top-k emits token-major
    ``(T, k)`` indices, expert-choice flat ``(N,)`` indices, and the
    sparse backend consumes either, so the dense path is a pure
    reference semantics, never a fallback.

    ``expert_impl`` selects the expert bank's execution strategy
    (:mod:`repro.moe.experts`): ``"batched"`` runs all E
    experts as two batched matmuls over the occupied slot prefix —
    the gate's per-expert fill counts bound the GEMMs — while
    ``"grouped"`` (the process default) removes the capacity dimension
    from the hot path
    entirely: with sparse dispatch the layer sorts the flat routed
    rows by expert (:func:`~repro.moe.dispatch.dispatch_grouped`),
    runs each expert's contiguous segment through
    :meth:`~repro.moe.experts.Experts.run_grouped`, and combines
    straight from the flat rows — no (E, C, M) buffer is ever built,
    so memory traffic is independent of the capacity factor.
    ``"loop"`` is the per-expert reference loop.  Outputs agree
    bit-for-bit between batched and loop; the grouped path agrees
    bit-for-bit on expert outputs and to float-addition reassociation
    (~1e-6) on combined tokens with more than two contributions.
    ``None`` (the default) defers to the ambient process default,
    overridable with :func:`~repro.moe.experts.default_expert_impl`.

    ``pipeline`` and ``num_chunks`` control the chunked task-graph
    execution of the grouped hot path (paper Section 4): the token
    batch splits into ``num_chunks`` contiguous ranges and each range
    runs the dispatch / A2A-codec / grouped-expert / A2A-codec /
    combine chain as explicit :class:`~repro.core.tasks.Task`s —
    inline and chunk-major under ``pipeline="sync"``, on the
    two-stream :class:`~repro.core.runtime.StreamExecutor` under
    ``pipeline="overlap"`` (real threads; numpy releases the GIL, so
    chunk i's expert GEMMs overlap chunk i+1's codec transport).  Both
    modes are bit-identical to each other at any chunk count, and —
    because chunk boundaries never split a token's assignments and
    per-row GEMM results don't depend on batching — bit-identical to
    the unchunked forward without a lossy codec (gradients agree to
    float reassociation, ~1e-6; a lossy codec quantizes per chunk, so
    chunking shifts values within codec error).  The default
    ``num_chunks=1`` with ``pipeline="sync"`` runs exactly the
    pre-pipeline code path.
    """

    def __init__(
        self,
        model_dim: int,
        hidden_dim: int,
        num_experts: int,
        rng: np.random.Generator,
        top_k: int = 2,
        capacity_factor: float = 1.0,
        compressor: Optional[Compressor] = None,
        activation: str = "relu",
        gate_noise_std: float = 0.0,
        gate_type: str = "topk",
        dispatch_mode: Optional[str] = None,
        expert_impl: Optional[str] = None,
        pipeline: str = "sync",
        num_chunks: int = 1,
    ):
        super().__init__()
        # Imported lazily: repro.core pulls this module back in.
        from ..core.runtime import validate_pipeline

        self.pipeline = validate_pipeline(pipeline)
        if num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
        self.num_chunks = int(num_chunks)
        self._executor = None
        if dispatch_mode is None:
            dispatch_mode = _default_dispatch_mode
        if dispatch_mode not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch_mode {dispatch_mode!r}; "
                f"expected one of {DISPATCH_MODES}"
            )
        self.dispatch_mode = dispatch_mode
        self.model_dim = model_dim
        if gate_type == "topk":
            self.gate = TopKGate(
                model_dim,
                num_experts,
                rng,
                top_k=top_k,
                capacity_factor=capacity_factor,
                noise_std=gate_noise_std,
            )
        elif gate_type == "expert-choice":
            from .gating_ec import ExpertChoiceGate

            self.gate = ExpertChoiceGate(
                model_dim,
                num_experts,
                rng,
                capacity_factor=capacity_factor,
                top_k=top_k,
            )
        else:
            raise ValueError(
                f"unknown gate_type {gate_type!r}; "
                "expected 'topk' or 'expert-choice'"
            )
        self.experts = Experts(
            num_experts,
            model_dim,
            hidden_dim,
            rng,
            activation=activation,
            expert_impl=expert_impl,
        )
        self.compressor = compressor
        #: Experts currently considered lost (graceful degradation);
        #: see :meth:`set_dead_experts`.
        self._dead_experts: frozenset = frozenset()
        self._in_forward = False
        #: Auxiliary load-balancing loss of the most recent forward.
        self.last_aux_loss: Optional[Tensor] = None
        #: Gate statistics of the most recent forward.
        self.last_gate_output: Optional[GateOutput] = None
        #: Raw dispatched payload of the most recent forward — the
        #: *pre-compression* input handed to the first A2A's codec
        #: (for fidelity studies; with a lossy compressor the wire
        #: itself carries the codec's compressed encoding).  Shape
        #: (E, C, M) for the capacity-buffer paths; the grouped impl
        #: ships the flat (N, M) routed rows instead — that *is* its
        #: wire payload.
        self.last_dispatched: Optional[np.ndarray] = None

    @property
    def dead_experts(self) -> frozenset:
        """Experts currently treated as lost (empty when healthy)."""
        return self._dead_experts

    def set_dead_experts(self, dead_experts) -> None:
        """Declare experts lost (e.g. their host worker died mid-run).

        Tokens routed to a dead expert are handled by the layer's
        existing capacity-drop semantics — combined as zeros with the
        surviving experts' weights renormalized
        (:meth:`~repro.moe.gating.GateOutput.with_experts_dropped`) —
        so training continues with bounded loss impact instead of
        crashing.  Pass an empty collection to restore full health;
        with no dead experts the forward path is bit-identical to a
        layer that never heard of faults.  Rejected while a forward is
        in flight (the overlap pipeline's task threads read routing
        state without locks).

        Recovering the lost experts instead of degrading — adopting
        them on surviving workers and re-instantiating parameters — is
        :class:`repro.faults.recovery.RecoveryController`'s job.
        """
        if self._in_forward:
            raise RuntimeError(
                "the dead-expert set cannot change while a forward "
                "pass is in flight: the pipeline's task threads are "
                "reading it; mutate the layer only between forwards"
            )
        dead = frozenset(int(e) for e in dead_experts)
        num_experts = self.gate.num_experts
        for e in dead:
            if not 0 <= e < num_experts:
                raise ValueError(
                    f"dead expert {e} out of range [0, {num_experts})"
                )
        if len(dead) == num_experts:
            raise ValueError(
                "all experts declared dead; the layer cannot degrade "
                "around a total loss"
            )
        self._dead_experts = dead

    def _transport(self, x: Tensor) -> Tensor:
        """One A2A hop: codec roundtrip on values and on gradients."""
        if self.compressor is None or self.compressor.bits_per_value >= 32:
            return x
        codec = self.compressor
        corrupted = codec.roundtrip(x.data)

        def backward(g):
            return ((x, codec.roundtrip(g)),)

        if Tensor._needs_grad(x):
            return Tensor(corrupted, _parents=(x,), _backward=backward)
        return Tensor(corrupted)

    def forward(self, x: Tensor) -> Tensor:
        """(B, L, M) or (T, M) in; same shape out."""
        # Mirrors ExpertParallelGroup's in-flight guard: under
        # pipeline="overlap" the chunked path's StreamExecutor threads
        # read routing state, so set_dead_experts mid-forward is a race.
        self._in_forward = True
        try:
            return self._forward_impl(x)
        finally:
            self._in_forward = False

    def _forward_impl(self, x: Tensor) -> Tensor:
        original_shape = x.shape
        if x.ndim == 3:
            tokens = x.reshape(-1, self.model_dim)
        elif x.ndim == 2:
            tokens = x
        else:
            raise ValueError(f"expected 2D or 3D input, got shape {x.shape}")

        gate_out = self.gate(tokens)
        if self._dead_experts:
            gate_out = gate_out.with_experts_dropped(self._dead_experts)
        self.last_gate_output = gate_out
        self.last_aux_loss = gate_out.aux_loss

        sparse = self.dispatch_mode == "sparse" and gate_out.has_sparse
        if sparse and self.experts.expert_impl == "grouped":
            if self.num_chunks == 1 and self.pipeline == "sync":
                # Capacity-free hot path: flat rows sorted by expert,
                # no (E, C, M) buffer on either side of the expert
                # FFNs.  This unchunked branch is the pre-pipeline
                # code, byte for byte.
                rows, routing = dispatch_grouped(
                    tokens,
                    gate_out.expert_indices,
                    gate_out.slot_indices,
                    gate_out.num_experts,
                    token_indices=gate_out.token_indices,
                    plan=gate_out.plan,
                )
                # Forward-only steps don't keep the wire payload
                # around for fidelity studies — and must not pin an
                # arena buffer past the next reset.
                self.last_dispatched = (
                    None if is_inference() else rows.data
                )
                rows = self._transport(rows)  # first A2A
                expert_rows = self.experts.run_grouped(
                    rows, routing.segment_counts
                )
                expert_rows = self._transport(expert_rows)  # second A2A
                merged = combine_grouped(
                    expert_rows,
                    routing,
                    gate_out.gate_weights,
                    gate_out.num_tokens,
                )
            else:
                merged = self._forward_grouped_chunked(tokens, gate_out)
            if len(original_shape) == 3:
                return merged.reshape(original_shape)
            return merged
        if sparse:
            dispatched = dispatch_sparse(
                tokens,
                gate_out.expert_indices,
                gate_out.slot_indices,
                gate_out.num_experts,
                gate_out.capacity,
                token_indices=gate_out.token_indices,
                plan=gate_out.plan,
            )
        else:
            dispatched = dispatch(tokens, gate_out.dispatch_mask)
        self.last_dispatched = None if is_inference() else dispatched.data
        dispatched = self._transport(dispatched)  # first A2A
        expert_out = self.experts(dispatched, expert_load=gate_out.expert_load)
        expert_out = self._transport(expert_out)  # second A2A
        if sparse:
            merged = combine_sparse(
                expert_out,
                gate_out.expert_indices,
                gate_out.slot_indices,
                gate_out.gate_weights,
                gate_out.num_tokens,
                token_indices=gate_out.token_indices,
                plan=gate_out.plan,
            )
        else:
            merged = combine(expert_out, gate_out.combine_weights)

        if len(original_shape) == 3:
            return merged.reshape(original_shape)
        return merged

    def _forward_grouped_chunked(
        self, tokens: Tensor, gate_out: GateOutput
    ) -> Tensor:
        """Chunked task-graph execution of the grouped hot path.

        The batch splits into ``num_chunks`` contiguous token ranges
        (the paper's partition degree r); each range runs the
        C1 A1 D1 E C2 A2 D2 chain of :mod:`repro.core.tasks` with real
        work: C1 = the chunk's restriction of the gate's cached
        :class:`~repro.moe.routing.RoutingPlan` plus the token gather,
        A1 / A2 = the codec transport hop, E =
        :meth:`~repro.moe.experts.Experts.run_grouped`, D2 =
        :func:`combine_grouped` into the chunk's own output rows (D1
        and C2 have nothing to do single-process — the flat rows *are*
        the received layout).  Chunk outputs concatenate back in token
        order.  Every task builds autograd nodes only on its chunk's
        private subgraph, so the overlap executor's two threads never
        race on tape state; backward runs later, single-threaded.

        C1 never sorts: chunk boundaries never split a token's k
        assignments, and restricting the plan's global expert-major
        order to a contiguous token range yields bit-for-bit what a
        per-chunk stable argsort (the pre-fusion C1) would — a masked
        slice of the one permutation the gate already computed.
        """
        from ..core.runtime import (
            StreamExecutor,
            chunk_bounds,
            run_inline,
        )
        from ..core.tasks import Task, TaskKind
        from ..nn.tensor import concatenate, gather

        gate = gate_out
        plan = gate.plan
        r = self.num_chunks
        bounds = chunk_bounds(gate.num_tokens, r)
        flat = np.asarray(gate.expert_indices).ndim == 1
        if flat:
            owner = np.asarray(gate.token_indices)
        # Owning chunk of each grouped (expert-major) row.
        chunk_of = (
            np.searchsorted(bounds, plan.grouped_token_ids, side="right") - 1
        )

        chunks = []
        for c in range(r):
            lo, hi = int(bounds[c]), int(bounds[c + 1])
            if flat:
                # Flat (N,) layout: the chunk's gate weights are the
                # assignments whose owning token falls in the range
                # (``pos`` ascending, so searchsorted re-bases the
                # plan's global flat positions to this slice in C1).
                (pos,) = np.nonzero((owner >= lo) & (owner < hi))
                chunks.append(
                    dict(
                        tokens=tokens[lo:hi],
                        lo=lo,
                        pos=pos,
                        gate_weights=gate.gate_weights[pos],
                        num_tokens=hi - lo,
                    )
                )
            else:
                chunks.append(
                    dict(
                        tokens=tokens[lo:hi],
                        lo=lo,
                        pos=None,
                        gate_weights=gate.gate_weights[lo:hi],
                        num_tokens=hi - lo,
                    )
                )

        rows: list = [None] * r
        routing: list = [None] * r
        expert_rows: list = [None] * r
        merged: list = [None] * r
        dispatched: list = [None] * r

        record_dispatched = not is_inference()

        def c1(c):
            (m,) = np.nonzero(chunk_of == c)
            local_tok = plan.grouped_token_ids[m] - chunks[c]["lo"]
            counts = np.bincount(
                plan.grouped_expert_ids[m], minlength=gate.num_experts
            ).astype(np.int64)
            if flat:
                weight_index = (
                    np.searchsorted(
                        chunks[c]["pos"], plan.grouped_weight_index[0][m]
                    ),
                )
            else:
                weight_index = (local_tok, plan.grouped_weight_index[1][m])
            routing[c] = GroupedRouting(
                segment_counts=counts,
                token_ids=local_tok,
                weight_index=weight_index,
            )
            rows[c] = gather(chunks[c]["tokens"], local_tok)
            if record_dispatched:
                dispatched[c] = rows[c].data

        def a1(c):
            rows[c] = self._transport(rows[c])  # first A2A

        def e(c):
            expert_rows[c] = self.experts.run_grouped(
                rows[c], routing[c].segment_counts
            )

        def a2(c):
            expert_rows[c] = self._transport(expert_rows[c])  # second A2A

        def d2(c):
            merged[c] = combine_grouped(
                expert_rows[c],
                routing[c],
                chunks[c]["gate_weights"],
                chunks[c]["num_tokens"],
            )

        def noop(c):
            pass

        step = {
            TaskKind.C1: c1,
            TaskKind.A1: a1,
            TaskKind.D1: noop,
            TaskKind.E: e,
            TaskKind.C2: noop,
            TaskKind.A2: a2,
            TaskKind.D2: d2,
        }
        fns = {
            Task(kind, chunk): (lambda k=kind, c=chunk: step[k](c))
            for chunk in range(r)
            for kind in step
        }
        if self.pipeline == "overlap":
            if self._executor is None:
                self._executor = StreamExecutor()
            self._executor.run(r, fns)
        else:
            run_inline(r, fns)

        # Chunk-major rather than globally expert-sorted, but still
        # exactly the rows the (chunked) first A2A shipped.  The
        # forward-only path skips the alloc-and-copy entirely.
        self.last_dispatched = (
            np.concatenate(dispatched, axis=0) if record_dispatched else None
        )
        return concatenate(merged, axis=0)

    def forward_inference(self, x: Tensor) -> Tensor:
        """Forward-only hot path (see :meth:`Module.forward_inference`).

        Runs the *same* :meth:`forward` code under ``inference_mode()``
        with the layer's arena installed, so outputs are bit-identical
        to an ``eval()`` training-tape forward while skipping tape
        construction, dense-mask densification, aux-loss bookkeeping
        and ``last_dispatched`` recording.  Requires the sparse
        dispatch backend: the dense reference path exists to check
        gradients and would densify (T, E, C) masks on a path that
        must never materialize them.
        """
        if self.dispatch_mode != "sparse":
            raise RuntimeError(
                "forward_inference requires dispatch_mode='sparse'; "
                f"this layer uses {self.dispatch_mode!r} (the dense "
                "einsum backend is a training-time reference path)"
            )
        return super().forward_inference(x)
