"""Mixture-of-experts algorithms: gating, dispatch/combine, experts.

The numerical MoE layer (GShard semantics: top-k gate, expert
capacity per paper Eq. 1, token dropping, load-balancing loss) used by
the models and the Table 6 convergence experiments.  The distributed
*timing* of this layer is handled by :mod:`repro.core`.
"""

from .dispatch import (
    DISPATCH_MODES,
    GroupedRouting,
    combine,
    combine_grouped,
    combine_sparse,
    dispatch,
    dispatch_grouped,
    dispatch_sparse,
)
from .experts import (
    EXPERT_IMPLS,
    Experts,
    default_expert_impl,
    validate_expert_impl,
)
from .gating import (
    GateOutput,
    TopKGate,
    assign_capacity_slots,
    load_balancing_loss,
)
from .layer import MoELayer, default_dispatch_mode
from .parallel import A2ATraffic, ExpertParallelGroup
from .placement import (
    ExpertPlacement,
    expert_param_bytes,
    reshard_moves,
    reshard_traffic,
)
from .routing import (
    RoutingPlan,
    plan_for_expert_choice,
    plan_from_indices,
    route_fused,
)

__all__ = [
    "A2ATraffic",
    "DISPATCH_MODES",
    "EXPERT_IMPLS",
    "ExpertParallelGroup",
    "ExpertPlacement",
    "Experts",
    "default_expert_impl",
    "expert_param_bytes",
    "GateOutput",
    "GroupedRouting",
    "MoELayer",
    "RoutingPlan",
    "default_dispatch_mode",
    "TopKGate",
    "assign_capacity_slots",
    "combine",
    "combine_grouped",
    "combine_sparse",
    "dispatch",
    "dispatch_grouped",
    "dispatch_sparse",
    "load_balancing_loss",
    "plan_for_expert_choice",
    "plan_from_indices",
    "reshard_moves",
    "reshard_traffic",
    "route_fused",
    "validate_expert_impl",
]
