"""Mixture-of-experts algorithms: gating, dispatch/combine, experts.

The numerical MoE layer (GShard semantics: top-k gate, expert
capacity per paper Eq. 1, token dropping, load-balancing loss) used by
the models and the Table 6 convergence experiments.  The distributed
*timing* of this layer is handled by :mod:`repro.core`.
"""

from .dispatch import combine, dispatch
from .experts import Experts
from .gating import GateOutput, TopKGate, load_balancing_loss
from .layer import MoELayer
from .parallel import A2ATraffic, ExpertParallelGroup

__all__ = [
    "A2ATraffic",
    "ExpertParallelGroup",
    "Experts",
    "GateOutput",
    "MoELayer",
    "TopKGate",
    "combine",
    "dispatch",
    "load_balancing_loss",
]
