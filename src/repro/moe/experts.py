"""Expert banks: E independent feed-forward networks.

The paper's ``AbsExpert``: experts are ordinary fflayers (two GEMMs),
"fast enough" not to need customization but abstracted so the profiler
can time them and the scheduler can split them into sub-tasks.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn import functional as F
from ..nn.modules import FeedForward, Module, ModuleList
from ..nn.tensor import Tensor, stack


class Experts(Module):
    """A bank of E feed-forward experts applied to (E, C, M) input."""

    def __init__(
        self,
        num_experts: int,
        model_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        activation: str = "relu",
    ):
        super().__init__()
        if num_experts < 1:
            raise ValueError(f"num_experts must be >= 1, got {num_experts}")
        self.num_experts = num_experts
        self.model_dim = model_dim
        self.hidden_dim = hidden_dim
        self.experts = ModuleList(
            [
                FeedForward(model_dim, hidden_dim, rng, activation=activation)
                for _ in range(num_experts)
            ]
        )

    def forward(self, dispatched: Tensor) -> Tensor:
        """Apply expert e to slice (e, :, :); returns (E, C, M)."""
        if dispatched.ndim != 3 or dispatched.shape[0] != self.num_experts:
            raise ValueError(
                f"expected ({self.num_experts}, C, M) input, got "
                f"{dispatched.shape}"
            )
        outputs: List[Tensor] = []
        for e, expert in enumerate(self.experts):
            outputs.append(expert(dispatched[e]))
        return stack(outputs, axis=0)
