"""Expert bank: E independent feed-forward networks, executed batched.

The paper's ``AbsExpert``: experts are ordinary fflayers (two GEMMs),
abstracted so the profiler can time them, the scheduler can split them
into sub-tasks — and so their execution strategy can be swapped.  This
module stores the whole bank as *stacked* parameters

* ``w1``: ``(E, M, H)``,  ``b1``: ``(E, 1, H)``
* ``w2``: ``(E, H, M)``,  ``b2``: ``(E, 1, M)``

and executes all E experts with two batched matmuls
(:func:`~repro.nn.tensor.bmm`) instead of a Python loop over E
per-expert modules — the grouped-GEMM move Megatron-Core and
MegaBlocks make for exactly this loop-of-small-GEMMs pathology.

Three execution strategies share the parameters:

* ``expert_impl="batched"`` — a *reference tier*: two ``bmm`` calls
  over the bank, *occupancy-aware*: given the gate's per-expert slot
  counts, only the occupied slot prefix ``[:max_fill]`` of the
  (E, C, M) capacity buffer enters the GEMMs.  The remaining padding
  slots are zero-filled — every consumer (sparse and dense combine
  alike) carries a zero combine weight at unoccupied slots, so the
  padding values are structurally unobservable downstream.  (An older
  formulation broadcast the closed-form "empty-slot response"
  ``fc2(act(b1))`` into the padding to stay bit-identical to running
  the FFN over every zero row; with ``"grouped"`` the process default
  that machinery is retired — the loop reference still produces the
  response at padding slots, so bank-level parity is asserted on the
  occupied prefix.)  GEMM FLOPs scale with ``E * max_fill`` (~ the
  routed token count N under balanced routing) instead of ``E * C``.
* ``expert_impl="grouped"`` (the process default) — *capacity-free*,
  MegaBlocks-style: the flat routed rows, sorted by expert, flow
  through :func:`~repro.nn.tensor.segment_matmul` — each expert's contiguous
  row segment multiplies its stacked weight slice, occupied experts
  only, no capacity dimension anywhere.  :meth:`Experts.run_grouped`
  is the primitive entry point the MoE layer's grouped hot path and
  :class:`~repro.moe.parallel.ExpertParallelGroup` use; when handed a
  capacity-form (E, C, M) buffer (dense dispatch mode, parity tests),
  :meth:`Experts.forward` gathers the occupied prefix rows, runs them
  grouped, and scatters them back into a zero buffer — same answers
  at every occupied slot, buffer only at the boundary.
* ``expert_impl="loop"`` — the reference: one expert at a time over
  its full capacity slice, Python-level, kept selectable for parity
  testing (`tests/moe/test_expert_bank.py` and
  `tests/moe/test_expert_grouped.py` assert bit-equal forwards and
  matching gradients).

Slot occupancy is a prefix by construction: every gate assigns
capacity slots FCFS from slot 0, so expert e's occupied slots are
exactly ``[0, fill_e)`` — ``GateOutput.expert_load`` is that fill.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.init import xavier_uniform
from ..nn.modules import Module, Parameter
from ..nn.tensor import (
    Tensor,
    bmm,
    concatenate,
    gather,
    scatter_add,
    segment_matmul,
    stack,
)

#: Valid values of the ``expert_impl`` switch.
EXPERT_IMPLS = ("batched", "grouped", "loop")

# The process-wide default.  Grouped (capacity-free segment GEMMs)
# has been the hot path since the flat-row dispatch landed; batched
# and loop remain selectable references.  Override per-bank with
# ``expert_impl=`` or ambiently with :func:`default_expert_impl`.
_default_expert_impl = "grouped"


def validate_expert_impl(impl: str) -> str:
    """Check ``impl`` against :data:`EXPERT_IMPLS` and return it.

    The single validation point shared by every entry that accepts an
    ``expert_impl`` — :func:`default_expert_impl`, :class:`Experts`
    (and through it :class:`~repro.moe.layer.MoELayer` and the model
    constructors) — so a typo'd impl name fails with the same error
    everywhere.
    """
    if impl not in EXPERT_IMPLS:
        raise ValueError(
            f"unknown expert_impl {impl!r}; expected one of {EXPERT_IMPLS}"
        )
    return impl


@contextmanager
def default_expert_impl(impl: str):
    """Temporarily change the process-wide default ``expert_impl``.

    Mirrors :func:`~repro.moe.layer.default_dispatch_mode`: banks built
    with ``expert_impl=None`` inside the block pick up ``impl``; an
    explicit argument still wins.  The convergence study uses this to
    pin its chaotic trajectories to the loop reference numerics (the
    batched and grouped backwards reassociate reductions, so gradients
    match only to ~1e-6 — enough to shift a 600-step training run).
    """
    global _default_expert_impl
    validate_expert_impl(impl)
    previous = _default_expert_impl
    _default_expert_impl = impl
    try:
        yield
    finally:
        _default_expert_impl = previous


class Experts(Module):
    """A bank of E feed-forward experts applied to (E, C, M) input."""

    def __init__(
        self,
        num_experts: int,
        model_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        activation: str = "relu",
        expert_impl: Optional[str] = None,
    ):
        super().__init__()
        if num_experts < 1:
            raise ValueError(f"num_experts must be >= 1, got {num_experts}")
        if activation not in ("relu", "gelu"):
            raise ValueError(f"unsupported activation {activation!r}")
        if expert_impl is None:
            expert_impl = _default_expert_impl
        validate_expert_impl(expert_impl)
        self.num_experts = num_experts
        self.model_dim = model_dim
        self.hidden_dim = hidden_dim
        self.activation = activation
        self.expert_impl = expert_impl
        # Draw per-expert weights in the exact rng order the historical
        # per-expert FeedForward construction used (fc1 then fc2, one
        # expert at a time), so seeded models are bit-identical to
        # those built before the stacked layout existed.
        w1 = np.empty((num_experts, model_dim, hidden_dim), dtype=np.float32)
        w2 = np.empty((num_experts, hidden_dim, model_dim), dtype=np.float32)
        for e in range(num_experts):
            w1[e] = xavier_uniform(rng, model_dim, hidden_dim)
            w2[e] = xavier_uniform(rng, hidden_dim, model_dim)
        self.w1 = Parameter(w1)
        self.b1 = Parameter(np.zeros((num_experts, 1, hidden_dim), np.float32))
        self.w2 = Parameter(w2)
        self.b2 = Parameter(np.zeros((num_experts, 1, model_dim), np.float32))

    def _act(self, x: Tensor) -> Tensor:
        return F.relu(x) if self.activation == "relu" else F.gelu(x)

    def reinit_expert(self, expert: int, rng: np.random.Generator) -> None:
        """Re-initialize one expert's parameters in place (recovery).

        Draws exactly what the constructor draws for one expert — fc1
        xavier, then fc2 xavier, biases zeroed — from ``rng``, so a
        recovery controller that seeds ``rng`` deterministically (see
        :class:`repro.faults.recovery.RecoveryController`) re-creates
        the same parameters on every replay.  Any optimizer moments
        attached to the bank's parameters are *not* touched: they are
        whole-bank arrays, and zeroing another expert's slice is the
        optimizer's caller's decision.
        """
        if not 0 <= expert < self.num_experts:
            raise IndexError(
                f"expert {expert} out of range [0, {self.num_experts})"
            )
        self.w1.data[expert] = xavier_uniform(
            rng, self.model_dim, self.hidden_dim
        )
        self.b1.data[expert] = 0.0
        self.w2.data[expert] = xavier_uniform(
            rng, self.hidden_dim, self.model_dim
        )
        self.b2.data[expert] = 0.0

    def load_expert_slice(
        self,
        expert: int,
        w1: np.ndarray,
        b1: np.ndarray,
        w2: np.ndarray,
        b2: np.ndarray,
    ) -> None:
        """Overwrite one expert's parameters with checkpointed values.

        The shapes must match the stacked layout exactly
        (``w1 (M, H)``, ``b1 (1, H)``, ``w2 (H, M)``, ``b2 (1, M)``) —
        the per-expert slices :func:`repro.nn.serialization.
        shard_expert_state` produces.
        """
        if not 0 <= expert < self.num_experts:
            raise IndexError(
                f"expert {expert} out of range [0, {self.num_experts})"
            )
        for name, value, param in (
            ("w1", w1, self.w1),
            ("b1", b1, self.b1),
            ("w2", w2, self.w2),
            ("b2", b2, self.b2),
        ):
            value = np.asarray(value, dtype=np.float32)
            expected = param.data.shape[1:]
            if value.shape != expected:
                raise ValueError(
                    f"expert {expert} {name}: expected shape "
                    f"{expected}, got {value.shape}"
                )
            param.data[expert] = value

    def run_expert(self, expert: int, x: Tensor) -> Tensor:
        """Apply one expert's FFN to a (rows, M) tensor.

        Used by :class:`~repro.moe.parallel.ExpertParallelGroup`, where
        each worker computes only the expert blocks it received, and by
        the loop reference path.  Gradients flow into the stacked
        parameters through the slice.
        """
        if not 0 <= expert < self.num_experts:
            raise IndexError(
                f"expert {expert} out of range [0, {self.num_experts})"
            )
        h = self._act(x @ self.w1[expert] + self.b1[expert])
        return h @ self.w2[expert] + self.b2[expert]

    def run_grouped(
        self, rows: Tensor, segment_counts: np.ndarray
    ) -> Tensor:
        """Apply the bank to flat rows sorted by expert, (N, M) -> (N, M).

        ``rows`` holds every routed token row, contiguous per expert
        (``segment_counts[e]`` rows for expert e, summing to N) — the
        sort-permutation form :func:`~repro.moe.dispatch.dispatch_grouped`
        produces.  Two :func:`~repro.nn.tensor.segment_matmul` calls
        run each occupied expert's segment through its FFN; the biases
        are gathered per row from the stacked ``(E, 1, H)/(E, 1, M)``
        parameters (a differentiable gather, so their gradients
        scatter-add back per segment).  No (E, C, M) buffer exists at
        any point, and an expert with an empty segment costs nothing.
        """
        counts = np.asarray(segment_counts)
        if rows.ndim != 2 or rows.shape[1] != self.model_dim:
            raise ValueError(
                f"expected (N, {self.model_dim}) rows, got {rows.shape}"
            )
        if counts.shape != (self.num_experts,):
            raise ValueError(
                f"segment_counts must be ({self.num_experts},), "
                f"got {counts.shape}"
            )
        expert_of_row = np.repeat(
            np.arange(self.num_experts), counts.astype(np.int64)
        )
        b1 = self.b1.reshape(self.num_experts, self.hidden_dim)
        b2 = self.b2.reshape(self.num_experts, self.model_dim)
        h = self._act(
            segment_matmul(rows, self.w1, counts)
            + gather(b1, expert_of_row)
        )
        return segment_matmul(h, self.w2, counts) + gather(b2, expert_of_row)

    def _validate(self, dispatched: Tensor) -> None:
        if (
            dispatched.ndim != 3
            or dispatched.shape[0] != self.num_experts
            or dispatched.shape[2] != self.model_dim
        ):
            raise ValueError(
                f"expected ({self.num_experts}, C, {self.model_dim}) "
                f"input, got {dispatched.shape}"
            )

    def forward(
        self,
        dispatched: Tensor,
        expert_load: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Apply expert e to slice (e, :, :); returns (E, C, M).

        ``expert_load`` (optional) is the gate's per-expert occupied
        slot count — ``GateOutput.expert_load``.  With it, the batched
        path runs the GEMMs only over the occupied slot prefix (and
        the grouped path gathers exactly the occupied rows) while the
        padding slots stay zero — unobservable downstream, since every
        combine carries a zero weight there; without it, every slot
        (zero rows included) goes through the GEMMs, which is also
        what the loop reference does.  Occupied-slot outputs are
        bit-identical either way.
        """
        self._validate(dispatched)
        fill = None
        if expert_load is not None:
            fill = np.asarray(expert_load)
            if fill.shape != (self.num_experts,):
                raise ValueError(
                    f"expert_load must be ({self.num_experts},), "
                    f"got {fill.shape}"
                )
        if self.expert_impl == "loop":
            outputs: List[Tensor] = []
            for e in range(self.num_experts):
                outputs.append(self.run_expert(e, dispatched[e]))
            return stack(outputs, axis=0)
        if self.expert_impl == "grouped":
            return self._grouped_capacity(dispatched, fill)

        capacity = dispatched.shape[1]
        active = capacity
        if fill is not None and capacity > 0:
            active = int(min(max(fill.max(initial=0), 0), capacity))

        body = dispatched if active == capacity else dispatched[:, :active]
        h = self._act(bmm(body, self.w1) + self.b1)
        out = bmm(h, self.w2) + self.b2
        if active == capacity:
            return out
        # Padding slots stay zero: their combine weight is zero in
        # every consumer, so no FLOPs (and no gradient wiring) are
        # spent on values nothing can observe.
        pad_shape = (self.num_experts, capacity - active, self.model_dim)
        padding = Tensor(np.zeros(pad_shape, dtype=np.float32))
        return concatenate([out, padding], axis=1)

    def _grouped_capacity(
        self, dispatched: Tensor, fill: Optional[np.ndarray]
    ) -> Tensor:
        """Capacity-form adapter for the grouped impl: (E, C, M) both ways.

        Used when the grouped bank receives a capacity buffer anyway —
        dense dispatch mode, the parity suites, fidelity studies.  The
        occupied prefix rows (all ``E * C`` rows when ``fill`` is
        unknown) are gathered into the flat sorted-by-expert form,
        run through :meth:`run_grouped`, and scattered back to their
        unique ``expert * C + slot`` origins; padding slots stay zero,
        exactly as the batched path leaves them.
        """
        num_experts, capacity, model_dim = dispatched.shape
        flat = dispatched.reshape(num_experts * capacity, model_dim)
        if fill is None or capacity == 0:
            counts = np.full(num_experts, capacity, dtype=np.int64)
            return self.run_grouped(flat, counts).reshape(dispatched.shape)
        counts = np.clip(fill, 0, capacity).astype(np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        total = int(offsets[-1])
        within = np.arange(total, dtype=np.int64) - np.repeat(
            offsets[:-1], counts
        )
        row_idx = (
            np.repeat(np.arange(num_experts, dtype=np.int64) * capacity, counts)
            + within
        )
        out_rows = self.run_grouped(gather(flat, row_idx), counts)
        return scatter_add(
            out_rows, row_idx, num_experts * capacity, unique_indices=True
        ).reshape(dispatched.shape)
