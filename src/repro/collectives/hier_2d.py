"""2D-hierarchical all-to-all (Tutel / DeepSpeed-MoE's 2DH-A2A).

Two strictly sequential phases:

1. **Intra-node alignment**: every GPU exchanges with its local peers
   so that the GPU at local rank ``r`` ends up holding all of the
   node's data destined for remote GPUs that also have local rank
   ``r``.  Each GPU ships ``S * (M-1)/M`` of its payload across the
   node fabric as fused bulk copies, preceded by a pack kernel
   (layout transform) on the compute engine.
2. **Inter-node exchange**: GPU ``(n, r)`` exchanges aggregated
   messages of ``S / N`` bytes with every GPU ``(n', r)``, followed by
   an unpack kernel.

Compared to NCCL's pairwise exchange this sends far fewer, larger
inter-node messages (good when latency dominates) at the price of
moving almost the entire payload across the intra-node fabric one
extra time and strictly serializing the two phases — which is why the
paper's Figure 9(c) shows 2DH-A2A losing to both NCCL-A2A and Pipe-A2A
by up to 2x once messages are bandwidth-bound.
"""

from __future__ import annotations

from typing import List

from ..cluster.engine import Event
from ..cluster.streams import GpuStreams
from ..cluster.topology import ClusterSpec, SimCluster
from .base import AllToAll, register_a2a


@register_a2a
class Hier2DA2A(AllToAll):
    """Tutel-style two-phase hierarchical exchange."""

    name = "2dh"

    def workspace_bytes(self, spec: ClusterSpec, nbytes: float, rank: int) -> float:
        """One staging buffer for the realigned phase-1 output."""
        return nbytes

    def schedule(
        self,
        cluster: SimCluster,
        streams: List[GpuStreams],
        nbytes: float,
    ) -> List[Event]:
        spec = cluster.spec
        num_nodes = spec.num_nodes
        gpn = spec.gpus_per_node
        world = spec.world_size

        # Per local peer, a GPU holds the data destined for the peer's
        # whole rank-group: one S/P chunk per node in the cluster.
        intra_msg = nbytes * num_nodes / world  # == nbytes / gpn
        inter_msg = nbytes / num_nodes

        # Pack kernels rearrange the payload by destination local-rank.
        packs: List[Event] = []
        for rank in cluster.iter_ranks():
            packs.append(
                streams[rank].compute.submit(
                    self._kernel(cluster, rank, 2.0 * nbytes),
                    name=f"2dh:pack({rank})",
                )
            )

        phase1: List[Event] = []
        for rank in cluster.iter_ranks():
            node = spec.node_of(rank)
            local = spec.local_rank(rank)
            for step in range(1, gpn):
                peer = node * gpn + (local + step) % gpn
                ev = streams[rank].comm.submit(
                    self._xfer(cluster, rank, peer, intra_msg, bulk=True),
                    after=packs,
                    name=f"2dh:intra({rank}->{peer})",
                )
                phase1.append(ev)

        completions: List[Event] = []
        for rank in cluster.iter_ranks():
            node = spec.node_of(rank)
            local = spec.local_rank(rank)
            last: Event | None = None
            for step in range(1, num_nodes):
                peer_node = (node + step) % num_nodes
                peer = spec.ranks_of_node(peer_node)[local]
                last = streams[rank].comm.submit(
                    self._xfer(cluster, rank, peer, inter_msg),
                    after=phase1,
                    name=f"2dh:inter({rank}->{peer})",
                )
            # Unpack kernel restoring the expected output layout.
            unpack = streams[rank].compute.submit(
                self._kernel(cluster, rank, 2.0 * nbytes),
                after=[last] if last is not None else phase1,
                name=f"2dh:unpack({rank})",
            )
            completions.append(unpack)
        return completions

    @staticmethod
    def _xfer(
        cluster: SimCluster, src: int, dst: int, chunk: float, bulk: bool = False
    ):
        def work():
            yield from cluster.transfer(src, dst, chunk, bulk=bulk)

        return work

    @staticmethod
    def _kernel(cluster: SimCluster, rank: int, touched_bytes: float):
        seconds = cluster.spec.gpu.memory_time(touched_bytes)

        def work():
            yield from cluster.compute(rank, seconds)

        return work
