"""Ring allreduce time model.

The non-MoE parameters of the models in the paper (attention layers,
embeddings, gating networks) are trained data-parallel, so every step
ends with an allreduce of their gradients.  The step-time simulator
prices this with the standard ring-allreduce cost: ``2 (P-1) / P``
times the payload crosses each GPU's bottleneck link, hierarchical
variant reducing intra-node first.
"""

from __future__ import annotations

from ..cluster.topology import ClusterSpec


def ring_allreduce_time(spec: ClusterSpec, nbytes: float) -> float:
    """Flat ring over all P GPUs in rank order.

    Each of the ``2 (P - 1)`` ring steps moves one ``nbytes / P``
    chunk per GPU to its ring successor.  With consecutive rank
    placement, ``M - 1`` of a node's hops stay on the intra fabric
    (pairwise send/recv path) and one crosses the NIC; the step time
    is the slower of the two — which is why flat rings are poor on
    hierarchical clusters whose pairwise fabric path is slow.
    """
    if nbytes < 0:
        raise ValueError(f"negative payload: {nbytes}")
    if nbytes == 0:
        return 0.0
    world = spec.world_size
    if world == 1:
        return 0.0
    steps = 2 * (world - 1)
    chunk = nbytes / world
    intra_hops = spec.gpus_per_node - 1
    fabric = (
        spec.intra_link.transfer_time(chunk * intra_hops)
        if intra_hops > 0
        else 0.0
    )
    nic = spec.inter_link.transfer_time(chunk) if spec.num_nodes > 1 else 0.0
    return steps * max(fabric, nic)


def hierarchical_allreduce_time(spec: ClusterSpec, nbytes: float) -> float:
    """Reduce intra-node, ring across nodes, broadcast intra-node.

    This is how NCCL actually handles multi-node allreduce; it is the
    default used by the step-time simulator.
    """
    if nbytes < 0:
        raise ValueError(f"negative payload: {nbytes}")
    if nbytes == 0:
        return 0.0
    gpn = spec.gpus_per_node
    nodes = spec.num_nodes
    # Intra-node reduce + broadcast: each stage moves (gpn-1)/gpn of
    # the payload per GPU across the shared fabric as fused bulk
    # copies (NCCL's ring uses large pipelined chunks here).
    intra = 0.0
    if gpn > 1:
        stage = spec.intra_bulk_link.transfer_time(
            nbytes * (gpn - 1) / gpn * gpn
        )
        intra = 2.0 * stage
    inter = 0.0
    if nodes > 1:
        steps = 2 * (nodes - 1)
        inter = steps * spec.inter_link.transfer_time(nbytes / nodes)
    return intra + inter
