"""Pipe-A2A: the paper's pipelined all-to-all (Section 5).

The insight: an all-to-all is a set of independent SR (send/recv)
pairs, some intra-node and some inter-node, and the two classes occupy
*different* interconnect resources (node fabric vs NIC).  NCCL-A2A
serializes all of a GPU's SR pairs on one stream, so while the NIC is
busy the fabric idles and vice versa.  Pipe-A2A posts each SR pair on
one of two asynchronous streams per GPU:

* **Intra-Stream** — SR(i, j) with i, j on the same node (including
  the self-copy SR(i, i));
* **Inter-Stream** — SR(i, j) across nodes.

The two streams execute concurrently, so the completion time drops
from ``t_intra + t_inter`` toward ``max(t_intra, t_inter)`` (paper
Eq. 16 vs Eq. 17), with the theoretical speedup bound of Eq. 18
implemented as :func:`theoretical_max_speedup`.

Each stream still progresses in lockstep rounds among its own class
(the sends/recvs pair up within the class), but the two classes are
never ordered against each other.
"""

from __future__ import annotations

from typing import List

from ..cluster.engine import Event
from ..cluster.streams import GpuStreams
from ..cluster.topology import ClusterSpec, SimCluster
from .base import AllToAll, register_a2a
from .ordering import node_aligned_peers, num_intra_rounds


@register_a2a
class PipeA2A(AllToAll):
    """Intra/inter-node pipelined pairwise exchange."""

    name = "pipe"

    def schedule(
        self,
        cluster: SimCluster,
        streams: List[GpuStreams],
        nbytes: float,
    ) -> List[Event]:
        spec = cluster.spec
        world = spec.world_size
        chunk = nbytes / world
        peer_lists = [node_aligned_peers(spec, r) for r in cluster.iter_ranks()]
        intra_rounds = num_intra_rounds(spec)
        completions: List[Event] = []

        prev_round: List[Event] = []
        for step in range(intra_rounds):
            this_round: List[Event] = []
            for rank in cluster.iter_ranks():
                peer = peer_lists[rank][step]
                ev = streams[rank].intra.submit(
                    self._xfer(cluster, rank, peer, chunk),
                    after=prev_round,
                    name=f"pipe:intra({rank}->{peer})",
                )
                this_round.append(ev)
            prev_round = this_round
        completions.extend(prev_round)

        prev_round = []
        for step in range(intra_rounds, world):
            this_round = []
            for rank in cluster.iter_ranks():
                peer = peer_lists[rank][step]
                ev = streams[rank].inter.submit(
                    self._xfer(cluster, rank, peer, chunk),
                    after=prev_round,
                    name=f"pipe:inter({rank}->{peer})",
                )
                this_round.append(ev)
            prev_round = this_round
        completions.extend(prev_round)
        return completions

    @staticmethod
    def _xfer(cluster: SimCluster, src: int, dst: int, chunk: float):
        def work():
            yield from cluster.transfer(src, dst, chunk)

        return work


def phase_times(spec: ClusterSpec, nbytes: float) -> tuple:
    """(t_intra, t_inter): serialized per-node phase durations.

    Per node: ``M (M - 1)`` intra SR messages of ``S/P`` bytes cross
    the fabric (self-copies excluded — they are on-device) and
    ``M (P - M)`` chunks leave through the NIC.
    """
    world = spec.world_size
    gpn = spec.gpus_per_node
    chunk = nbytes / world
    intra_msgs = gpn * (gpn - 1)
    inter_msgs = gpn * (world - gpn)
    t_intra = intra_msgs * spec.intra_link.transfer_time(chunk)
    t_inter = inter_msgs * spec.inter_link.transfer_time(chunk)
    return t_intra, t_inter


def theoretical_max_speedup(spec: ClusterSpec, nbytes: float) -> float:
    """Paper Eq. 18: max speedup of Pipe-A2A over sequential NCCL-A2A.

    ``(t_intra + t_inter) / max(t_intra, t_inter)`` with the per-node
    serialized phase times; 1.0 means no possible gain (one resource
    completely dominates).
    """
    t_intra, t_inter = phase_times(spec, nbytes)
    bottleneck = max(t_intra, t_inter)
    if bottleneck <= 0:
        return 1.0
    return (t_intra + t_inter) / bottleneck
