"""1D-hierarchical all-to-all (HetuMoE's 1DH-A2A baseline).

One leader GPU per node (local rank 0) aggregates the node's entire
payload with bulk staged copies, leaders run an inter-node all-to-all
on the aggregated data, and results are scattered back to the node's
GPUs.  This cuts the number of inter-node messages from ``P^2`` to
``N^2`` — attractive when latency dominates — but:

* the three phases are strictly sequential, each ending in a
  host-visible synchronization (the gather/scatter staging is driven
  by the host), modeled as a fixed per-phase overhead;
* the leader must stage ``M x S`` gathered input plus ``M x S``
  exchanged output, so memory explodes at large tensors — the paper's
  Figure 9(c) shows 1DH-A2A running out of memory there;
* all of the node's traffic funnels through one GPU, so the
  bandwidth-bound performance trails every other algorithm (Figure 9).
"""

from __future__ import annotations

from typing import List

from ..cluster.engine import Event
from ..cluster.streams import GpuStreams
from ..cluster.topology import ClusterSpec, SimCluster
from .base import AllToAll, register_a2a

#: Host synchronization cost closing each of the three phases.
PHASE_SYNC_S = 400.0e-6


@register_a2a
class Hier1DA2A(AllToAll):
    """Leader-based gather / inter-node exchange / scatter."""

    name = "1dh"

    def workspace_bytes(self, spec: ClusterSpec, nbytes: float, rank: int) -> float:
        """Leaders stage the node's gathered input and exchanged output."""
        if spec.local_rank(rank) == 0:
            return 2.0 * spec.gpus_per_node * nbytes
        return 0.0

    def schedule(
        self,
        cluster: SimCluster,
        streams: List[GpuStreams],
        nbytes: float,
    ) -> List[Event]:
        spec = cluster.spec
        engine = cluster.engine
        num_nodes = spec.num_nodes
        gpn = spec.gpus_per_node

        # Phase 1: gather each node's payload at its leader (bulk copies).
        phase1: List[Event] = []
        for node in range(num_nodes):
            leader = spec.ranks_of_node(node)[0]
            for rank in spec.ranks_of_node(node):
                if rank == leader:
                    continue
                ev = streams[rank].comm.submit(
                    self._xfer(cluster, rank, leader, nbytes, bulk=True),
                    name=f"1dh:gather({rank}->{leader})",
                )
                phase1.append(ev)
        phase1 = [self._sync(engine, streams, phase1, "1dh:sync1")]

        # Phase 2: leaders exchange aggregated chunks.  The leader of
        # node n holds gpn * nbytes; the share destined to node n' is
        # gpn * nbytes / num_nodes.
        exchange_chunk = gpn * nbytes / num_nodes
        phase2: List[Event] = []
        for node in range(num_nodes):
            leader = spec.ranks_of_node(node)[0]
            for step in range(num_nodes):
                peer_node = (node + step) % num_nodes
                peer_leader = spec.ranks_of_node(peer_node)[0]
                ev = streams[leader].comm.submit(
                    self._xfer(cluster, leader, peer_leader, exchange_chunk),
                    after=phase1,
                    name=f"1dh:xchg({leader}->{peer_leader})",
                )
                phase2.append(ev)
        phase2 = [self._sync(engine, streams, phase2, "1dh:sync2")]

        # Phase 3: leaders scatter final shares back to local GPUs.
        completions: List[Event] = []
        for node in range(num_nodes):
            leader = spec.ranks_of_node(node)[0]
            for rank in spec.ranks_of_node(node):
                if rank == leader:
                    continue
                ev = streams[leader].comm.submit(
                    self._xfer(cluster, leader, rank, nbytes, bulk=True),
                    after=phase2,
                    name=f"1dh:scatter({leader}->{rank})",
                )
                completions.append(ev)
        return [self._sync(engine, streams, completions, "1dh:sync3")]

    @staticmethod
    def _xfer(
        cluster: SimCluster, src: int, dst: int, chunk: float, bulk: bool = False
    ):
        def work():
            yield from cluster.transfer(src, dst, chunk, bulk=bulk)

        return work

    @staticmethod
    def _sync(engine, streams, after: List[Event], name: str) -> Event:
        """Host synchronization: a fixed delay after all phase events."""

        def work():
            if after:
                yield engine.all_of(after)
            yield engine.timeout(PHASE_SYNC_S)

        return engine.process(work(), name=name)
