"""NCCL-style pairwise all-to-all (the paper's NCCL-A2A baseline).

NCCL implements all-to-all as P grouped point-to-point send/recv pairs
per GPU, progressing in lockstep rounds on a *single* communication
stream.  With the node-aligned peer order all intra-node rounds run
first and all inter-node rounds after, so the fabric idles while the
NIC works and vice versa — the total is ``t_intra + t_inter`` exactly
as in the paper's Eq. 17, which is the inefficiency Pipe-A2A removes.

Rounds are separated by a barrier event (NCCL grouped P2P kernels are
bulk-synchronous across the communicator), keeping the simulation
faithful to lockstep progress even when resource contention would let
one rank run ahead.
"""

from __future__ import annotations

from typing import List

from ..cluster.engine import Event
from ..cluster.streams import GpuStreams
from ..cluster.topology import SimCluster
from .base import AllToAll, register_a2a
from .ordering import node_aligned_peers


@register_a2a
class NcclA2A(AllToAll):
    """Lockstep pairwise exchange on one comm stream per GPU."""

    name = "nccl"

    def schedule(
        self,
        cluster: SimCluster,
        streams: List[GpuStreams],
        nbytes: float,
    ) -> List[Event]:
        world = cluster.world_size
        chunk = nbytes / world
        peer_lists = [node_aligned_peers(cluster.spec, r) for r in cluster.iter_ranks()]
        prev_round: List[Event] = []
        for step in range(world):
            this_round: List[Event] = []
            for rank in cluster.iter_ranks():
                peer = peer_lists[rank][step]
                ev = streams[rank].comm.submit(
                    self._transfer_factory(cluster, rank, peer, chunk),
                    after=prev_round,
                    name=f"nccl:sr({rank}->{peer})",
                )
                this_round.append(ev)
            prev_round = this_round
        return prev_round

    @staticmethod
    def _transfer_factory(cluster: SimCluster, src: int, dst: int, chunk: float):
        def work():
            yield from cluster.transfer(src, dst, chunk)

        return work
