"""PXN-style aggregated, pipelined all-to-all.

NCCL 2.12's "PxN" rail optimization (the NVIDIA blog post cited as
[1] in the paper) aggregates messages intra-node before they leave
through the NIC, like 2DH-A2A — but unlike 2DH it does not barrier
between the phases: as soon as a rail's aggregation block is ready it
departs, so intra-node aggregation overlaps inter-node transfers the
way Pipe-A2A overlaps its SR classes.

Included as a demonstration that the AbsAlltoAll extension point
admits genuinely new algorithm structure (aggregation + pipelining),
and as a what-if: on the paper's testbed it beats 2DH-A2A (hides the
intra phase) but still trails Pipe-A2A, whose pairwise intra messages
move 8x less fabric volume.
"""

from __future__ import annotations

from typing import List

from ..cluster.engine import Event
from ..cluster.streams import GpuStreams
from ..cluster.topology import ClusterSpec, SimCluster
from .base import AllToAll, register_a2a


@register_a2a
class PxnA2A(AllToAll):
    """Rail-aligned aggregation pipelined with inter-node sends."""

    name = "pxn"

    def workspace_bytes(self, spec: ClusterSpec, nbytes: float, rank: int) -> float:
        """One aggregation staging buffer per GPU."""
        return nbytes

    def schedule(
        self,
        cluster: SimCluster,
        streams: List[GpuStreams],
        nbytes: float,
    ) -> List[Event]:
        spec = cluster.spec
        num_nodes = spec.num_nodes
        gpn = spec.gpus_per_node

        # Intra: each GPU forwards, per remote node d, the data headed
        # to that node via the local "rail owner" (the GPU whose local
        # rank is d % gpn) — one bulk message of S/N per remote node.
        intra_msg = nbytes / num_nodes
        # Inter: the rail owner ships the node's aggregated block for
        # node d: gpn * S / N bytes, chunked per source for pipelining.
        inter_msg = gpn * nbytes / num_nodes

        completions: List[Event] = []
        for rank in cluster.iter_ranks():
            node = spec.node_of(rank)
            local = spec.local_rank(rank)
            for step in range(1, num_nodes):
                peer_node = (node + step) % num_nodes
                rail = peer_node % gpn
                rail_rank = node * gpn + rail
                # Aggregation hop (skipped when this GPU is the rail).
                if rail != local:
                    agg = streams[rank].intra.submit(
                        self._xfer(cluster, rank, rail_rank, intra_msg, bulk=True),
                        name=f"pxn:agg({rank}->{rail_rank})",
                    )
                    deps = [agg]
                else:
                    deps = []
                # The rail owner's inter-node send of this GPU's share;
                # posted on the rail's inter stream, gated only on the
                # aggregation hop — no phase barrier.
                peer = spec.ranks_of_node(peer_node)[rail]
                ev = streams[rail_rank].inter.submit(
                    self._xfer(cluster, rail_rank, peer, inter_msg / gpn),
                    after=deps,
                    name=f"pxn:inter({rail_rank}->{peer})",
                )
                completions.append(ev)
            # Local deliveries (own node) stay pairwise on the intra
            # stream, as in Pipe-A2A.
            for step in range(gpn):
                peer = node * gpn + (local + step) % gpn
                ev = streams[rank].intra.submit(
                    self._xfer(cluster, rank, peer, nbytes / spec.world_size),
                    name=f"pxn:local({rank}->{peer})",
                )
                completions.append(ev)
        return completions

    @staticmethod
    def _xfer(
        cluster: SimCluster, src: int, dst: int, chunk: float, bulk: bool = False
    ):
        def work():
            yield from cluster.transfer(src, dst, chunk, bulk=bulk)

        return work
