"""All-to-all algorithm interface and measurement harness.

An algorithm schedules send/recv work onto per-GPU streams of a
:class:`~repro.cluster.topology.SimCluster`; the harness runs the event
loop and reports the makespan, per-GPU peak memory and traffic stats.

All algorithms move the same logical payload: each GPU holds an input
of ``nbytes`` and must deliver ``nbytes / P`` to every GPU (itself
included, as an on-device copy), matching the dispatch/combine tensors
of Section 2 of the paper.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from ..cluster.engine import Engine, Event
from ..cluster.streams import GpuStreams, make_streams
from ..cluster.topology import ClusterSpec, SimCluster


class AllToAll(ABC):
    """Base class of all-to-all collective algorithms.

    Subclasses implement :meth:`schedule`, posting work onto the given
    streams and returning the completion events to wait on.  They must
    account staging memory through ``cluster.gpu(rank).allocate`` so
    that out-of-memory behaviour is simulated faithfully.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def schedule(
        self,
        cluster: SimCluster,
        streams: List[GpuStreams],
        nbytes: float,
    ) -> List[Event]:
        """Post one all-to-all of ``nbytes`` per GPU; return completions."""

    def input_buffer_bytes(self, spec: ClusterSpec, nbytes: float) -> float:
        """Per-GPU buffer footprint of one collective call (in + out)."""
        return 2.0 * nbytes

    def workspace_bytes(self, spec: ClusterSpec, nbytes: float, rank: int) -> float:
        """Algorithm-specific staging footprint on ``rank`` (default none)."""
        return 0.0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: Dict[str, Type[AllToAll]] = {}


def register_a2a(cls: Type[AllToAll]) -> Type[AllToAll]:
    """Class decorator adding an algorithm to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"A2A algorithm {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_a2a(name: str) -> AllToAll:
    """Instantiate a registered algorithm by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown A2A algorithm {name!r}; known: {known}")
    return cls()

def available_a2a() -> List[str]:
    """Names of all registered algorithms."""
    return sorted(_REGISTRY)


@dataclass
class A2AResult:
    """Outcome of one measured collective."""

    algorithm: str
    nbytes: float
    seconds: float
    peak_bytes_per_gpu: float
    oom: bool = False
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def busbw_bps(self) -> float:
        """Per-GPU effective bus bandwidth (nbytes moved / time)."""
        if self.seconds <= 0 or self.oom:
            return 0.0
        return self.nbytes / self.seconds


def measure_a2a(
    algo: AllToAll,
    spec: ClusterSpec,
    nbytes: float,
    engine: Optional[Engine] = None,
    faults=None,
) -> A2AResult:
    """Run one collective on a fresh cluster and report its makespan.

    Out-of-memory during scheduling is reported as ``oom=True`` with
    ``seconds=inf`` rather than raising, so sweeps (Fig. 9) can record
    OOM points the way the paper plots them.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan`: the
    collective then runs on a faulted cluster (straggler GPUs don't
    affect a pure communication benchmark, but link degradation and
    transient failures do).
    """
    from ..cluster.topology import SimulatedOOM

    cluster = SimCluster(spec, engine=engine, faults=faults)
    streams = make_streams(cluster.engine, spec.world_size)
    for rank in cluster.iter_ranks():
        gpu = cluster.gpu(rank)
        try:
            gpu.allocate(algo.input_buffer_bytes(spec, nbytes))
            ws = algo.workspace_bytes(spec, nbytes, rank)
            if ws:
                gpu.allocate(ws)
        except SimulatedOOM:
            return A2AResult(
                algorithm=algo.name,
                nbytes=nbytes,
                seconds=float("inf"),
                peak_bytes_per_gpu=gpu.peak_allocated_bytes,
                oom=True,
            )
    start = cluster.engine.now
    algo.schedule(cluster, streams, nbytes)
    cluster.engine.run()
    peak = max(g.peak_allocated_bytes for g in cluster.gpus)
    return A2AResult(
        algorithm=algo.name,
        nbytes=nbytes,
        seconds=cluster.engine.now - start,
        peak_bytes_per_gpu=peak,
        stats=cluster.stats,
    )
