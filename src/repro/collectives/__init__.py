"""All-to-all collective algorithms on the simulated cluster.

Implements the four algorithms compared in the paper's Figure 9 —
NCCL-A2A, 1DH-A2A (HetuMoE), 2DH-A2A (Tutel / DeepSpeed-MoE) and the
paper's Pipe-A2A — plus the allreduce used for the data-parallel
gradients.  New algorithms register via :func:`register_a2a` and are
then schedulable by the ScheMoE core unchanged (the paper's
``AbsAlltoAll`` extension point).
"""

from .allreduce import hierarchical_allreduce_time, ring_allreduce_time
from .base import (
    A2AResult,
    AllToAll,
    available_a2a,
    get_a2a,
    measure_a2a,
    register_a2a,
)
from .hier_1d import Hier1DA2A
from .hier_2d import Hier2DA2A
from .nccl_a2a import NcclA2A
from .pipe_a2a import PipeA2A, phase_times, theoretical_max_speedup
from .pxn import PxnA2A

__all__ = [
    "A2AResult",
    "AllToAll",
    "Hier1DA2A",
    "Hier2DA2A",
    "NcclA2A",
    "PipeA2A",
    "PxnA2A",
    "available_a2a",
    "get_a2a",
    "hierarchical_allreduce_time",
    "measure_a2a",
    "phase_times",
    "register_a2a",
    "ring_allreduce_time",
    "theoretical_max_speedup",
]
