"""Peer orderings shared by the pairwise exchange algorithms.

All pairwise all-to-all variants here visit peers in a *node-aligned*
order: first the GPU's own node (self-copy, then local peers in
rotated local-rank order), then remote nodes in rotated node order.
Because every rank uses the same rotation offsets, round ``t`` is
globally consistent — in each round the send/recv pairs form a perfect
matching and every rank is exchanging over the same class of link
(intra-node for the first ``M`` rounds, inter-node afterwards).

This mirrors how NCCL group-launched point-to-point operations
progress in lockstep rounds, and it is the execution model behind the
paper's Eq. 17 (NCCL-A2A time = intra phase + inter phase, strictly
sequential).
"""

from __future__ import annotations

from typing import List

from ..cluster.topology import ClusterSpec


def node_aligned_peers(spec: ClusterSpec, rank: int) -> List[int]:
    """Peer sequence for ``rank``: own node first, then remote nodes.

    Round ``t`` of the returned sequence pairs rank ``(n, r)`` with:

    * ``t < M``: local peer ``(n, (r + t) mod M)`` — an intra-node
      exchange (``t = 0`` is the self-copy);
    * ``t >= M``: writing ``t - M = (d - 1) * M + s`` with node offset
      ``d >= 1``, the peer ``((n + d) mod N, (r + s) mod M)``.

    For every ``t`` the map rank -> peer is an involution-free perfect
    matching in the sense required for send/recv pairing: if ``a``
    sends to ``b`` in round ``t``, then ``b`` receives from ``a`` in a
    round with the same link class, so rounds are never mixed-class.
    """
    gpn = spec.gpus_per_node
    nodes = spec.num_nodes
    node = spec.node_of(rank)
    local = spec.local_rank(rank)
    peers: List[int] = []
    for t in range(gpn):
        peers.append(node * gpn + (local + t) % gpn)
    for d in range(1, nodes):
        peer_node = (node + d) % nodes
        for s in range(gpn):
            peers.append(peer_node * gpn + (local + s) % gpn)
    return peers


def num_intra_rounds(spec: ClusterSpec) -> int:
    """Rounds of :func:`node_aligned_peers` that are intra-node."""
    return spec.gpus_per_node


def num_rounds(spec: ClusterSpec) -> int:
    """Total rounds (= world size)."""
    return spec.world_size
